//! Elementwise and scalar operations on [`Tensor`].

use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::{Tensor, TensorError};

impl Tensor {
    fn check_same_shape(&self, other: &Tensor, op: &'static str) -> Result<(), TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        Ok(())
    }

    /// Elementwise sum, checked.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn checked_add(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.check_same_shape(other, "add")?;
        Ok(self.zip_with(other, |a, b| a + b))
    }

    /// Elementwise difference, checked.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn checked_sub(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.check_same_shape(other, "sub")?;
        Ok(self.zip_with(other, |a, b| a - b))
    }

    /// Elementwise (Hadamard) product, checked.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn checked_mul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.check_same_shape(other, "mul")?;
        Ok(self.zip_with(other, |a, b| a * b))
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { data: self.data.iter().map(|&v| f(v)).collect(), shape: self.shape.clone() }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Combines two same-shaped tensors elementwise.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ. Use the `checked_*` methods for fallible
    /// variants.
    pub fn zip_with(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, other.shape, "zip_with shape mismatch");
        Tensor {
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// In-place elementwise combine: `self[i] = f(self[i], other[i])`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn zip_with_inplace(&mut self, other: &Tensor, f: impl Fn(f32, f32) -> f32) {
        assert_eq!(self.shape, other.shape, "zip_with_inplace shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a = f(*a, b);
        }
    }

    /// `self += alpha * other` (BLAS `axpy`), in place.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Multiplies every element by `s`, producing a new tensor.
    pub fn scaled(&self, s: f32) -> Tensor {
        self.map(|v| v * s)
    }

    /// Multiplies every element by `s` in place.
    pub fn scale(&mut self, s: f32) {
        self.map_inplace(|v| v * s);
    }

    /// Clamps every element into `[lo, hi]`, producing a new tensor.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn clamped(&self, lo: f32, hi: f32) -> Tensor {
        assert!(lo <= hi, "clamp bounds inverted: {lo} > {hi}");
        self.map(|v| v.clamp(lo, hi))
    }

    /// Clamps every element into `[lo, hi]` in place.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn clamp_inplace(&mut self, lo: f32, hi: f32) {
        assert!(lo <= hi, "clamp bounds inverted: {lo} > {hi}");
        self.map_inplace(|v| v.clamp(lo, hi));
    }

    /// Elementwise sign: −1, 0, or 1.
    pub fn signum(&self) -> Tensor {
        self.map(|v| {
            if v > 0.0 {
                1.0
            } else if v < 0.0 {
                -1.0
            } else {
                0.0
            }
        })
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Dot product of two same-shaped tensors viewed as flat vectors.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(self.len(), other.len(), "dot length mismatch");
        self.data.iter().zip(&other.data).map(|(&a, &b)| a * b).sum()
    }

    /// Euclidean (L2) norm of the tensor viewed as a flat vector.
    pub fn norm_l2(&self) -> f32 {
        self.data.iter().map(|&v| v * v).sum::<f32>().sqrt()
    }

    /// Maximum absolute element (L∞ norm); 0 for an empty tensor.
    pub fn norm_linf(&self) -> f32 {
        self.data.iter().fold(0.0_f32, |m, &v| m.max(v.abs()))
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait<&Tensor> for &Tensor {
            type Output = Tensor;
            fn $method(self, rhs: &Tensor) -> Tensor {
                self.zip_with(rhs, |a, b| a $op b)
            }
        }
        impl $trait<f32> for &Tensor {
            type Output = Tensor;
            fn $method(self, rhs: f32) -> Tensor {
                self.map(|a| a $op rhs)
            }
        }
    };
}

impl_binop!(Add, add, +);
impl_binop!(Sub, sub, -);
impl_binop!(Mul, mul, *);
impl_binop!(Div, div, /);

impl Neg for &Tensor {
    type Output = Tensor;
    fn neg(self) -> Tensor {
        self.map(|v| -v)
    }
}

impl AddAssign<&Tensor> for Tensor {
    fn add_assign(&mut self, rhs: &Tensor) {
        self.zip_with_inplace(rhs, |a, b| a + b);
    }
}

impl SubAssign<&Tensor> for Tensor {
    fn sub_assign(&mut self, rhs: &Tensor) {
        self.zip_with_inplace(rhs, |a, b| a - b);
    }
}

impl MulAssign<f32> for Tensor {
    fn mul_assign(&mut self, rhs: f32) {
        self.scale(rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_slice(v)
    }

    #[test]
    fn arithmetic_operators() {
        let a = t(&[1.0, 2.0, 3.0]);
        let b = t(&[4.0, 5.0, 6.0]);
        assert_eq!((&a + &b).as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!((&b - &a).as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!((&a * &b).as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!((&b / &a).as_slice(), &[4.0, 2.5, 2.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0, 6.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0, -3.0]);
    }

    #[test]
    fn assign_operators() {
        let mut a = t(&[1.0, 2.0]);
        a += &t(&[1.0, 1.0]);
        assert_eq!(a.as_slice(), &[2.0, 3.0]);
        a -= &t(&[2.0, 2.0]);
        assert_eq!(a.as_slice(), &[0.0, 1.0]);
        a *= 3.0;
        assert_eq!(a.as_slice(), &[0.0, 3.0]);
    }

    #[test]
    fn checked_ops_reject_shape_mismatch() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[3, 2]);
        assert!(a.checked_add(&b).is_err());
        assert!(a.checked_sub(&b).is_err());
        assert!(a.checked_mul(&b).is_err());
        assert!(a.checked_add(&Tensor::zeros(&[2, 3])).is_ok());
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = t(&[1.0, 1.0]);
        a.axpy(0.5, &t(&[2.0, 4.0]));
        assert_eq!(a.as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn clamp_and_sign() {
        let a = t(&[-2.0, 0.0, 0.5, 3.0]);
        assert_eq!(a.clamped(0.0, 1.0).as_slice(), &[0.0, 0.0, 0.5, 1.0]);
        assert_eq!(a.signum().as_slice(), &[-1.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "clamp bounds inverted")]
    fn clamp_panics_on_inverted_bounds() {
        t(&[1.0]).clamped(1.0, 0.0);
    }

    #[test]
    fn norms_and_dot() {
        let a = t(&[3.0, 4.0]);
        assert_eq!(a.norm_l2(), 5.0);
        assert_eq!(a.norm_linf(), 4.0);
        assert_eq!(a.dot(&t(&[1.0, 2.0])), 11.0);
        assert_eq!(Tensor::zeros(&[0]).norm_linf(), 0.0);
    }

    #[test]
    fn fill_zero_keeps_shape() {
        let mut a = Tensor::ones(&[2, 2]);
        a.fill_zero();
        assert_eq!(a.dims(), &[2, 2]);
        assert!(a.iter().all(|&v| v == 0.0));
    }
}
