//! Work-stealing-friendly block partitions.
//!
//! The parallel kernels split their output into contiguous, aligned blocks
//! and let pool threads *steal* blocks off a shared counter (see the `rayon`
//! shim). These helpers compute the partitions; they are pure functions of
//! the problem shape and requested block budget, so a partition is
//! reproducible — and because every kernel's per-element arithmetic order is
//! independent of the partition, the block boundaries never show up in
//! results, only in wall-clock time.
//!
//! The budget convention is "at most `max_blocks`, each a multiple of
//! `align` except the last": more blocks than threads is what makes stealing
//! effective (a straggler delays at most one small block, not a static
//! 1/threads share), while alignment keeps every block a whole number of
//! micro-tiles or cache slivers so no two blocks share a packed panel.

use std::ops::Range;

/// One task's rectangle of the output: a row range × a column range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridTask {
    /// Row range of the output owned by this task.
    pub rows: Range<usize>,
    /// Column range of the output owned by this task.
    pub cols: Range<usize>,
}

/// Splits `len` items into at most `max_blocks` contiguous ranges whose
/// starts are multiples of `align` (the final range simply ends at `len`).
///
/// Returns an empty vector for `len == 0`. Blocks are as equal as
/// `align`-rounding allows; the result depends only on the arguments.
///
/// # Panics
///
/// Panics if `align == 0`.
pub fn aligned_blocks(len: usize, align: usize, max_blocks: usize) -> Vec<Range<usize>> {
    assert!(align > 0, "aligned_blocks: align must be positive");
    if len == 0 {
        return Vec::new();
    }
    let units = len.div_ceil(align);
    let blocks = max_blocks.clamp(1, units);
    let per = units.div_ceil(blocks) * align;
    (0..len.div_ceil(per)).map(|i| i * per..((i + 1) * per).min(len)).collect()
}

/// Partitions an `m × n` output into a grid of [`GridTask`] rectangles:
/// column stripes are multiples of `col_align` (so each stripe owns whole
/// packed slivers) and row blocks are multiples of `row_align` (whole
/// micro-tiles), with roughly `max_tasks` rectangles in total.
///
/// Columns are split first — wide-short outputs become column stripes,
/// tall outputs become row panels, and genuinely large outputs become a 2-D
/// grid. Tasks are ordered row-major so neighbouring steals touch
/// neighbouring memory. Returns an empty vector when either dimension is 0.
///
/// # Panics
///
/// Panics if either alignment is 0.
pub fn block_grid(
    m: usize,
    n: usize,
    row_align: usize,
    col_align: usize,
    max_tasks: usize,
) -> Vec<GridTask> {
    if m == 0 || n == 0 {
        return Vec::new();
    }
    let max_tasks = max_tasks.max(1);
    let col_ranges = aligned_blocks(n, col_align, max_tasks);
    let row_budget = (max_tasks / col_ranges.len()).max(1);
    let row_ranges = aligned_blocks(m, row_align, row_budget);
    let mut tasks = Vec::with_capacity(row_ranges.len() * col_ranges.len());
    for rows in &row_ranges {
        for cols in &col_ranges {
            tasks.push(GridTask { rows: rows.clone(), cols: cols.clone() });
        }
    }
    tasks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_blocks_cover_exactly_once() {
        for len in [0usize, 1, 3, 4, 7, 16, 63, 64, 65, 257, 1000] {
            for align in [1usize, 4, 16] {
                for max_blocks in [1usize, 2, 7, 32] {
                    let blocks = aligned_blocks(len, align, max_blocks);
                    assert!(blocks.len() <= max_blocks.max(1));
                    let mut next = 0;
                    for b in &blocks {
                        assert_eq!(b.start, next, "contiguous");
                        assert!(b.start % align == 0, "aligned start");
                        assert!(b.end > b.start, "non-empty");
                        next = b.end;
                    }
                    assert_eq!(next, len, "covers len={len} align={align}");
                }
            }
        }
    }

    #[test]
    fn aligned_blocks_is_deterministic() {
        assert_eq!(aligned_blocks(256, 4, 8), aligned_blocks(256, 4, 8));
        assert_eq!(aligned_blocks(256, 4, 8).len(), 8);
        assert_eq!(aligned_blocks(10, 4, 8), vec![0..4, 4..8, 8..10]);
    }

    #[test]
    fn block_grid_tiles_the_output() {
        for (m, n) in [(1usize, 1usize), (8, 4096), (256, 256), (64, 100_000), (7, 13)] {
            let tasks = block_grid(m, n, 4, 256, 32);
            assert!(!tasks.is_empty());
            // Every cell covered exactly once.
            let mut covered = 0usize;
            for t in &tasks {
                assert!(t.rows.end <= m && t.cols.end <= n);
                covered += t.rows.len() * t.cols.len();
            }
            assert_eq!(covered, m * n, "m={m} n={n}");
        }
    }

    #[test]
    fn block_grid_empty_dims() {
        assert!(block_grid(0, 10, 4, 16, 8).is_empty());
        assert!(block_grid(10, 0, 4, 16, 8).is_empty());
    }

    #[test]
    fn block_grid_prefers_columns_for_wide_outputs() {
        // Conv-style short-wide output: stripes along n.
        let tasks = block_grid(8, 4096, 4, 256, 16);
        assert!(tasks.len() > 1);
        assert!(tasks.iter().all(|t| t.rows == (0..8)));
        // Tall output: panels along m.
        let tasks = block_grid(4096, 256, 4, 256, 16);
        assert!(tasks.len() > 1);
        assert!(tasks.iter().all(|t| t.cols == (0..256)));
    }
}
