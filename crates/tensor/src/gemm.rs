//! Cache-blocked single-precision general matrix multiply.
//!
//! This is the workhorse behind dense layers and `im2col`-lowered
//! convolutions. It is a straightforward tiled triple loop with an `ikj`
//! inner ordering (unit-stride accumulation over the output row), which is
//! fast enough for the network sizes this reproduction trains while staying
//! dependency-free and easy to verify against a naive reference.
//!
//! Large products are parallelised over contiguous row blocks of `C`. Each
//! output element `C[i, j]` is owned by exactly one thread and accumulates
//! its `k` products in the same order regardless of how rows are
//! partitioned, so the result is bitwise identical for every thread count.

use rayon::prelude::*;

use crate::{Tensor, TensorError};

/// Whether an operand of [`gemm`] is used as-is or transposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Transpose {
    /// Use the matrix as stored.
    #[default]
    No,
    /// Use the matrix transposed (without materialising the transpose).
    Yes,
}

impl Transpose {
    fn is_yes(self) -> bool {
        matches!(self, Transpose::Yes)
    }
}

const BLOCK: usize = 64;

/// Minimum `m * n * k` before gemm fans out across threads; below this the
/// fork-join overhead outweighs the kernel time.
const PAR_MIN_WORK: usize = 128 * 1024;

/// Scalar kernel over the row range `[row0, row0 + rows)` of `op(A)`,
/// accumulating into `c_block` (the corresponding rows of `C`). The
/// `p0 → j0 → p → j` nesting fixes each element's accumulation order
/// independently of the row partition, which is what makes the parallel
/// split exact.
#[allow(clippy::too_many_arguments)]
fn gemm_rows(
    c_block: &mut [f32],
    row0: usize,
    rows: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a_data: &[f32],
    lda: usize,
    ta: Transpose,
    b_data: &[f32],
    ldb: usize,
    tb: Transpose,
) {
    // a_at(i, p) = op(A)[i, p] for the *global* row index i.
    let a_at = |i: usize, p: usize| -> f32 {
        if ta.is_yes() {
            a_data[p * lda + i]
        } else {
            a_data[i * lda + p]
        }
    };

    for l0 in (0..rows).step_by(BLOCK) {
        let l1 = (l0 + BLOCK).min(rows);
        for p0 in (0..k).step_by(BLOCK) {
            let p1 = (p0 + BLOCK).min(k);
            for j0 in (0..n).step_by(BLOCK) {
                let j1 = (j0 + BLOCK).min(n);
                for l in l0..l1 {
                    let c_row = &mut c_block[l * n..(l + 1) * n];
                    for p in p0..p1 {
                        let av = alpha * a_at(row0 + l, p);
                        if av == 0.0 {
                            continue;
                        }
                        if tb.is_yes() {
                            // op(B)[p, j] = B[j, p]: strided, fall back.
                            for (j, c_ij) in c_row[j0..j1].iter_mut().enumerate() {
                                *c_ij += av * b_data[(j0 + j) * ldb + p];
                            }
                        } else {
                            let b_row = &b_data[p * ldb + j0..p * ldb + j1];
                            for (c_ij, &b_pj) in c_row[j0..j1].iter_mut().zip(b_row) {
                                *c_ij += av * b_pj;
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Computes `C = alpha * op(A) · op(B) + beta * C`.
///
/// `a` must have logical shape `m × k` after `ta` is applied and `b` must
/// have logical shape `k × n` after `tb` is applied; `c` must be `m × n`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if any operand is not rank-2 and
/// [`TensorError::ShapeMismatch`] if inner or output dimensions disagree.
///
/// # Example
///
/// ```
/// use taamr_tensor::{gemm, Tensor, Transpose};
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let b = Tensor::eye(2);
/// let mut c = Tensor::zeros(&[2, 2]);
/// gemm(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c)?;
/// assert_eq!(c.as_slice(), a.as_slice());
/// # Ok::<(), taamr_tensor::TensorError>(())
/// ```
pub fn gemm(
    alpha: f32,
    a: &Tensor,
    ta: Transpose,
    b: &Tensor,
    tb: Transpose,
    beta: f32,
    c: &mut Tensor,
) -> Result<(), TensorError> {
    taamr_obs::incr(taamr_obs::Counter::GemmCalls);
    for (t, name) in [(a, "gemm lhs"), (b, "gemm rhs"), (&*c, "gemm out")] {
        if t.rank() != 2 {
            let _ = name;
            return Err(TensorError::RankMismatch { op: "gemm", expected: 2, actual: t.rank() });
        }
    }
    let (m, ka) = if ta.is_yes() {
        (a.dims()[1], a.dims()[0])
    } else {
        (a.dims()[0], a.dims()[1])
    };
    let (kb, n) = if tb.is_yes() {
        (b.dims()[1], b.dims()[0])
    } else {
        (b.dims()[0], b.dims()[1])
    };
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            op: "gemm",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    if c.dims() != [m, n] {
        return Err(TensorError::ShapeMismatch {
            op: "gemm",
            lhs: vec![m, n],
            rhs: c.dims().to_vec(),
        });
    }
    let k = ka;

    if beta != 1.0 {
        if beta == 0.0 {
            c.fill_zero();
        } else {
            c.scale(beta);
        }
    }
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return Ok(());
    }

    let a_data = a.as_slice();
    let b_data = b.as_slice();
    // Leading dimensions of the *stored* matrices.
    let lda = a.dims()[1];
    let ldb = b.dims()[1];
    let c_data = c.as_mut_slice();

    let threads = rayon::current_num_threads();
    if threads > 1 && m > 1 && m * n * k >= PAR_MIN_WORK {
        // Contiguous row blocks of C: disjoint writes, no reduction.
        let rows_per = m.div_ceil(threads.min(m));
        c_data.par_chunks_mut(rows_per * n).enumerate().for_each(|(ci, block)| {
            let row0 = ci * rows_per;
            let rows = block.len() / n;
            gemm_rows(block, row0, rows, n, k, alpha, a_data, lda, ta, b_data, ldb, tb);
        });
    } else {
        gemm_rows(c_data, 0, m, n, k, alpha, a_data, lda, ta, b_data, ldb, tb);
    }
    Ok(())
}

impl Tensor {
    /// Matrix product `self · rhs` of two rank-2 tensors.
    ///
    /// # Errors
    ///
    /// Returns the same errors as [`gemm`].
    pub fn matmul(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "matmul",
                expected: 2,
                actual: self.rank(),
            });
        }
        if rhs.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "matmul",
                expected: 2,
                actual: rhs.rank(),
            });
        }
        let mut out = Tensor::zeros(&[self.dims()[0], rhs.dims()[1]]);
        gemm(1.0, self, Transpose::No, rhs, Transpose::No, 0.0, &mut out)?;
        Ok(out)
    }

    /// Matrix–vector product of a rank-2 tensor with a rank-1 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `self.cols != v.len()`.
    pub fn matvec(&self, v: &Tensor) -> Result<Tensor, TensorError> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "matvec",
                expected: 2,
                actual: self.rank(),
            });
        }
        let (r, c) = (self.dims()[0], self.dims()[1]);
        if v.len() != c {
            return Err(TensorError::ShapeMismatch {
                op: "matvec",
                lhs: self.dims().to_vec(),
                rhs: v.dims().to_vec(),
            });
        }
        let mut out = Tensor::zeros(&[r]);
        for i in 0..r {
            out.data[i] = self.data[i * c..(i + 1) * c]
                .iter()
                .zip(v.as_slice())
                .map(|(&a, &b)| a * b)
                .sum();
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive reference used to validate the blocked kernel.
    fn naive(a: &Tensor, ta: Transpose, b: &Tensor, tb: Transpose) -> Tensor {
        let (m, k) = if ta.is_yes() {
            (a.dims()[1], a.dims()[0])
        } else {
            (a.dims()[0], a.dims()[1])
        };
        let n = if tb.is_yes() { b.dims()[0] } else { b.dims()[1] };
        let mut c = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for p in 0..k {
                    let av = if ta.is_yes() { a.at(&[p, i]) } else { a.at(&[i, p]) };
                    let bv = if tb.is_yes() { b.at(&[j, p]) } else { b.at(&[p, j]) };
                    s += av * bv;
                }
                *c.at_mut(&[i, j]) = s;
            }
        }
        c
    }

    fn seq(dims: &[usize]) -> Tensor {
        let n: usize = dims.iter().product();
        Tensor::from_vec((0..n).map(|i| (i as f32 * 0.37).sin()).collect(), dims).unwrap()
    }

    fn assert_close(a: &Tensor, b: &Tensor) {
        assert_eq!(a.dims(), b.dims());
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_matches_naive_small() {
        let a = seq(&[3, 4]);
        let b = seq(&[4, 5]);
        assert_close(&a.matmul(&b).unwrap(), &naive(&a, Transpose::No, &b, Transpose::No));
    }

    #[test]
    fn matmul_matches_naive_larger_than_block() {
        let a = seq(&[70, 65]);
        let b = seq(&[65, 90]);
        assert_close(&a.matmul(&b).unwrap(), &naive(&a, Transpose::No, &b, Transpose::No));
    }

    #[test]
    fn all_transpose_combinations_match_naive() {
        let cases = [
            (Transpose::No, Transpose::No, [7usize, 5], [5usize, 9]),
            (Transpose::Yes, Transpose::No, [5, 7], [5, 9]),
            (Transpose::No, Transpose::Yes, [7, 5], [9, 5]),
            (Transpose::Yes, Transpose::Yes, [5, 7], [9, 5]),
        ];
        for (ta, tb, da, db) in cases {
            let a = seq(&da);
            let b = seq(&db);
            let mut c = Tensor::zeros(&[7, 9]);
            gemm(1.0, &a, ta, &b, tb, 0.0, &mut c).unwrap();
            assert_close(&c, &naive(&a, ta, &b, tb));
        }
    }

    #[test]
    fn alpha_beta_accumulate() {
        let a = seq(&[4, 4]);
        let b = seq(&[4, 4]);
        let mut c = Tensor::ones(&[4, 4]);
        gemm(2.0, &a, Transpose::No, &b, Transpose::No, 3.0, &mut c).unwrap();
        let expected =
            &naive(&a, Transpose::No, &b, Transpose::No).scaled(2.0) + &Tensor::full(&[4, 4], 3.0);
        assert_close(&c, &expected);
    }

    #[test]
    fn identity_is_neutral() {
        let a = seq(&[6, 6]);
        assert_close(&a.matmul(&Tensor::eye(6)).unwrap(), &a);
        assert_close(&Tensor::eye(6).matmul(&a).unwrap(), &a);
    }

    #[test]
    fn dimension_errors() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 5]);
        assert!(a.matmul(&b).is_err());
        let mut c = Tensor::zeros(&[2, 2]);
        assert!(gemm(1.0, &a, Transpose::No, &Tensor::zeros(&[3, 5]), Transpose::No, 0.0, &mut c)
            .is_err());
        assert!(Tensor::zeros(&[2]).matmul(&b).is_err());
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = seq(&[5, 7]);
        let v = seq(&[7]);
        let mv = a.matvec(&v).unwrap();
        let mm = a.matmul(&v.reshaped(&[7, 1]).unwrap()).unwrap();
        for i in 0..5 {
            assert!((mv.as_slice()[i] - mm.as_slice()[i]).abs() < 1e-5);
        }
        assert!(a.matvec(&seq(&[6])).is_err());
    }

    #[test]
    fn zero_k_dimension_yields_beta_c() {
        let a = Tensor::zeros(&[3, 0]);
        let b = Tensor::zeros(&[0, 2]);
        let mut c = Tensor::ones(&[3, 2]);
        gemm(1.0, &a, Transpose::No, &b, Transpose::No, 0.5, &mut c).unwrap();
        assert!(c.iter().all(|&v| v == 0.5));
    }
}
