//! Packed-panel single-precision general matrix multiply.
//!
//! This is the workhorse behind dense layers and `im2col`-lowered
//! convolutions. The kernel is a cache-blocked, register-tiled design in the
//! BLIS mould: operand panels are packed into contiguous,
//! transpose-normalized scratch buffers ([`BlockSizes`]: `MC × KC` slivers of
//! `op(A)` with `alpha` folded in, `KC × NC` slivers of `op(B)`), and an
//! inner [`MR`]`×`[`NR`] micro-kernel accumulates a register tile over one
//! `KC` block before adding it into `C`. Packing normalises both transpose
//! cases into the same unit-stride layout, so all four `op` combinations run
//! the identical inner loop.
//!
//! # Fixed summation order
//!
//! Results are **bitwise identical at every thread count and for every
//! row/column partition**. The canonical accumulation sequence for one
//! output element `C[i, j]` is:
//!
//! 1. scale by `beta` (exact zero fill when `beta == 0`), then
//! 2. for each `KC`-aligned block of the shared dimension, in ascending
//!    order: add the block's partial sum, itself accumulated from zero over
//!    `p` ascending as `((alpha · op(A)[i, p]) · op(B)[p, j])`.
//!
//! That sequence depends only on [`GEMM_KC`] and the ascending `p` loops —
//! never on `MC`/`NC`, the micro-tile shape, or how rows/columns were
//! handed to threads, because parallelism only ever splits the `m` and `n`
//! dimensions (each output element is owned by exactly one task) and every
//! task walks the *absolute* `K` blocks in the same order. Packing is a pure
//! copy and bit-preserving. The differential and golden-fixture tests lock
//! this contract down; changing `GEMM_KC` is a semantic change that must
//! regenerate the golden digests.
//!
//! Scratch for the packed panels comes from a caller-supplied
//! [`GemmScratch`] (or the calling thread's, via [`gemm`]), so steady-state
//! workloads never allocate here.

use rayon::prelude::*;

use crate::partition::{block_grid, GridTask};
use crate::{with_gemm_scratch, GemmScratch, Tensor, TensorError};

/// Whether an operand of [`gemm`] is used as-is or transposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Transpose {
    /// Use the matrix as stored.
    #[default]
    No,
    /// Use the matrix transposed (without materialising the transpose).
    Yes,
}

impl Transpose {
    fn is_yes(self) -> bool {
        matches!(self, Transpose::Yes)
    }
}

/// Micro-tile rows: each inner-kernel invocation produces an `MR × NR`
/// register accumulator. Perf knobs only — they never change results.
pub const MR: usize = 4;
/// Micro-tile columns. See [`MR`].
pub const NR: usize = 16;

/// The `K`-dimension block length of the canonical summation order.
///
/// This is the one blocking parameter that is *semantic*: partial sums
/// restart at every `GEMM_KC` boundary, so a different value produces
/// different (equally valid) floating-point results. It is re-exported so
/// tests and docs can state the contract explicitly.
pub const GEMM_KC: usize = 256;

/// Cache-blocking parameters for the packed kernel.
///
/// `mc × kc` is one packed sliver of `op(A)` (sized for L2), `kc × nc` one
/// packed sliver of `op(B)` (sized for L1-friendly panel reuse). `mc` and
/// `nc` are pure performance knobs; `kc` participates in the summation-order
/// contract (see [`GEMM_KC`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockSizes {
    /// Row-block length of packed `op(A)` slivers.
    pub mc: usize,
    /// Column-block length of packed `op(B)` slivers.
    pub nc: usize,
    /// Shared-dimension block length (summation-order sensitive).
    pub kc: usize,
}

/// The production blocking: `64 × 256` A-slivers (64 KiB) and `256 × 256`
/// B-slivers (256 KiB), tuned by the `gemm_blocking` ablation bench.
pub const GEMM_BLOCKING: BlockSizes = BlockSizes { mc: 64, nc: 256, kc: GEMM_KC };

impl BlockSizes {
    /// Packed `op(B)` sliver length in floats, padded to whole `NR` panels.
    fn b_pack_len(&self) -> usize {
        self.kc * self.nc.div_ceil(NR) * NR
    }

    /// Packed `op(A)` sliver length in floats, padded to whole `MR` panels.
    fn a_pack_len(&self) -> usize {
        self.kc * self.mc.div_ceil(MR) * MR
    }

    /// Scratch floats one task needs for its packing buffers.
    fn pack_len(&self) -> usize {
        self.b_pack_len() + self.a_pack_len()
    }
}

/// Minimum `m * n * k` before gemm fans out across threads. The rayon shim
/// dispatches onto a persistent worker pool (a mutex push + wakeup, not a
/// thread spawn), so even mid-sized products amortise the fork-join cost.
const PAR_MIN_WORK: usize = 256 * 1024;

/// Ceiling, in floats, on the shared packed-`op(B)` arena the cooperative
/// schedule pre-builds (128 MiB). Above this the kernel falls back to
/// per-task packing rather than ballooning scratch; the catalog-scoring
/// shapes (100k items × 256-dim) sit comfortably below it.
const SHARED_PACK_CAP: usize = 32 * 1024 * 1024;

/// How a parallel GEMM divides packing work between tasks.
///
/// Every schedule produces **bitwise identical** results (packing is a pure
/// copy and each output element is owned by one task walking the absolute
/// `KC` blocks in ascending order); the choice only moves wall-clock time.
/// The differential tests exercise each variant explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GemmSchedule {
    /// Pick per call: shared packing when the packed `op(B)` arena fits the
    /// cap, per-task packing otherwise.
    #[default]
    Auto,
    /// Pack each `KC × NC` sliver of `op(B)` exactly once into a shared
    /// arena that every task reads — packing cost matches the serial
    /// schedule no matter how many threads run.
    SharedPack,
    /// Each task packs the slivers its own output rectangle needs (the
    /// pre-pool schedule): duplicated `op(B)` packing across row panels,
    /// but zero shared state and O(1) extra scratch per task.
    PerTaskPack,
}

/// An unchecked, shareable handle to the output matrix.
///
/// Parallel tasks own disjoint `(row, col)` rectangles of `C` but those
/// rectangles interleave in memory, so tasks cannot hold `&mut` slices;
/// they write through this raw pointer instead.
///
/// Safety contract: the grid partition hands every output element to exactly
/// one task, the buffer outlives the parallel region (the shim's completion
/// barrier), and the caller finishes all `&mut c` access before tasks start.
#[derive(Clone, Copy)]
struct COut {
    ptr: *mut f32,
    ldc: usize,
}

unsafe impl Send for COut {}
unsafe impl Sync for COut {}

impl COut {
    /// Accumulates `vals` into `C[row, col..col + vals.len()]`.
    ///
    /// # Safety
    ///
    /// The caller must own that element range per the struct contract and
    /// stay in bounds.
    #[inline(always)]
    unsafe fn accumulate(&self, row: usize, col: usize, vals: &[f32]) {
        let dst = unsafe { self.ptr.add(row * self.ldc + col) };
        for (j, &v) in vals.iter().enumerate() {
            unsafe { *dst.add(j) += v };
        }
    }
}

/// A borrowed matrix with its transpose normalised away: `at(i, j)` is
/// `op(M)[i, j]` regardless of storage order.
#[derive(Clone, Copy)]
struct MatRef<'a> {
    data: &'a [f32],
    ld: usize,
    trans: bool,
}

impl MatRef<'_> {
    #[inline(always)]
    fn at(&self, i: usize, j: usize) -> f32 {
        if self.trans {
            self.data[j * self.ld + i]
        } else {
            self.data[i * self.ld + j]
        }
    }
}

/// Packs the `rows × kc` sliver of `op(A)` starting at `(row0, p0)` into
/// `MR`-row panels: `dst[ir][p * MR + r] = alpha · op(A)[row0 + ir·MR + r,
/// p0 + p]`, zero-padded past `rows`. Folding `alpha` here keeps the inner
/// kernel multiply-add only and matches the canonical `(alpha·a)·b` order.
fn pack_a(dst: &mut [f32], a: MatRef<'_>, row0: usize, rows: usize, p0: usize, kc: usize, alpha: f32) {
    for (ir, panel) in dst.chunks_mut(kc * MR).take(rows.div_ceil(MR)).enumerate() {
        let base = row0 + ir * MR;
        let live = MR.min(rows - ir * MR);
        for p in 0..kc {
            let out = &mut panel[p * MR..(p + 1) * MR];
            for (r, slot) in out.iter_mut().enumerate() {
                *slot = if r < live { alpha * a.at(base + r, p0 + p) } else { 0.0 };
            }
        }
    }
}

/// Packs the `kc × cols` sliver of `op(B)` starting at `(p0, col0)` into
/// `NR`-column panels: `dst[jr][p * NR + j] = op(B)[p0 + p, col0 + jr·NR +
/// j]`, zero-padded past `cols`.
fn pack_b(dst: &mut [f32], b: MatRef<'_>, p0: usize, kc: usize, col0: usize, cols: usize) {
    for (jr, panel) in dst.chunks_mut(kc * NR).take(cols.div_ceil(NR)).enumerate() {
        let base = col0 + jr * NR;
        let live = NR.min(cols - jr * NR);
        for p in 0..kc {
            let out = &mut panel[p * NR..(p + 1) * NR];
            for (j, slot) in out.iter_mut().enumerate() {
                *slot = if j < live { b.at(p0 + p, base + j) } else { 0.0 };
            }
        }
    }
}

/// The register-tile inner kernel: accumulates one `MR × NR` tile over a
/// full `kc` block, `p` ascending, starting from zero. Padding lanes in the
/// panels are zero so edge tiles compute harmless extra zeros that are never
/// stored.
#[inline(always)]
fn micro_kernel(kc: usize, a_panel: &[f32], b_panel: &[f32], acc: &mut [[f32; NR]; MR]) {
    let a_it = a_panel.chunks_exact(MR).take(kc);
    let b_it = b_panel.chunks_exact(NR).take(kc);
    for (ap, bp) in a_it.zip(b_it) {
        let ap: &[f32; MR] = ap.try_into().expect("A panel is MR-strided");
        let bp: &[f32; NR] = bp.try_into().expect("B panel is NR-strided");
        for (acc_row, &ar) in acc.iter_mut().zip(ap) {
            for (slot, &bv) in acc_row.iter_mut().zip(bp) {
                *slot += ar * bv;
            }
        }
    }
}

/// Packed-panel driver over one rectangular region of `C`, packing both
/// operands itself (`pack` must hold `bs.pack_len()` floats; prior contents
/// are irrelevant — packing fully overwrites each sliver).
///
/// Writes the update for global rows `[row0, row0 + m)` and columns
/// `[col0, col0 + n)` through `c` (see [`COut`] for the aliasing contract).
///
/// This wrapper only picks a code-generation flavour of the one driver body:
/// on x86-64 CPUs reporting AVX2 it calls the AVX2-compiled clone, otherwise
/// the baseline build. Both are the *same Rust function* compiled twice —
/// identical IEEE-754 multiply/add sequence per element, no fused
/// multiply-add (Rust never enables floating-point contraction) — so the
/// dispatch is bitwise invisible; the differential and golden tests would
/// fail on any machine where it were not.
#[allow(clippy::too_many_arguments)]
fn region_per_task(
    c: COut,
    row0: usize,
    m: usize,
    col0: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: MatRef<'_>,
    b: MatRef<'_>,
    bs: BlockSizes,
    pack: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: the callee only requires AVX2, which the runtime check
        // just confirmed this CPU supports.
        unsafe { region_per_task_avx2(c, row0, m, col0, n, k, alpha, a, b, bs, pack) };
        return;
    }
    region_per_task_impl(c, row0, m, col0, n, k, alpha, a, b, bs, pack);
}

/// The AVX2-compiled clone of [`region_per_task_impl`]. The 8-wide registers
/// roughly double the no-FMA mul/add throughput the baseline x86-64 (SSE2)
/// build is capped at, without touching the operation order.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
fn region_per_task_avx2(
    c: COut,
    row0: usize,
    m: usize,
    col0: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: MatRef<'_>,
    b: MatRef<'_>,
    bs: BlockSizes,
    pack: &mut [f32],
) {
    region_per_task_impl(c, row0, m, col0, n, k, alpha, a, b, bs, pack);
}

#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn region_per_task_impl(
    c: COut,
    row0: usize,
    m: usize,
    col0: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: MatRef<'_>,
    b: MatRef<'_>,
    bs: BlockSizes,
    pack: &mut [f32],
) {
    let (b_pack, a_pack) = pack[..bs.pack_len()].split_at_mut(bs.b_pack_len());
    for jc in (0..n).step_by(bs.nc) {
        let ncb = bs.nc.min(n - jc);
        // Absolute, ascending K blocks: the summation-order anchor.
        for pc in (0..k).step_by(bs.kc) {
            let kcb = bs.kc.min(k - pc);
            pack_b(b_pack, b, pc, kcb, col0 + jc, ncb);
            for ic in (0..m).step_by(bs.mc) {
                let mcb = bs.mc.min(m - ic);
                pack_a(a_pack, a, row0 + ic, mcb, pc, kcb, alpha);
                micro_sweep(c, row0 + ic, mcb, col0 + jc, ncb, kcb, a_pack, b_pack);
            }
        }
    }
}

/// Driver over one rectangular region of `C` that consumes pre-packed
/// `op(B)` slivers from a shared arena and packs only its own `op(A)` rows
/// (`a_pack` must hold `bs.a_pack_len()` floats).
///
/// `col0` must be a multiple of `bs.nc` (the grid partition guarantees it),
/// so every column block maps onto exactly one shared sliver; `slivers` is
/// laid out `[jc_index * kc_blocks + pc_index] × bs.b_pack_len()` over the
/// *global* column/K space. The loop nest here differs from
/// [`region_per_task_impl`] (`pc` outermost so each packed `op(A)` sliver is
/// reused across every column block), which is invisible to results: each
/// output element still accumulates its `KC` blocks in ascending order.
#[allow(clippy::too_many_arguments)]
fn region_shared_b(
    c: COut,
    row0: usize,
    m: usize,
    col0: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: MatRef<'_>,
    bs: BlockSizes,
    slivers: &[f32],
    a_pack: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: as for `region_per_task_avx2`.
        unsafe { region_shared_b_avx2(c, row0, m, col0, n, k, alpha, a, bs, slivers, a_pack) };
        return;
    }
    region_shared_b_impl(c, row0, m, col0, n, k, alpha, a, bs, slivers, a_pack);
}

/// AVX2-compiled clone of [`region_shared_b_impl`]; see
/// [`region_per_task_avx2`] for why the dispatch is bitwise invisible.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
fn region_shared_b_avx2(
    c: COut,
    row0: usize,
    m: usize,
    col0: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: MatRef<'_>,
    bs: BlockSizes,
    slivers: &[f32],
    a_pack: &mut [f32],
) {
    region_shared_b_impl(c, row0, m, col0, n, k, alpha, a, bs, slivers, a_pack);
}

#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn region_shared_b_impl(
    c: COut,
    row0: usize,
    m: usize,
    col0: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: MatRef<'_>,
    bs: BlockSizes,
    slivers: &[f32],
    a_pack: &mut [f32],
) {
    debug_assert_eq!(col0 % bs.nc, 0, "column stripes must start on an NC boundary");
    let kc_blocks = k.div_ceil(bs.kc);
    let sliver_len = bs.b_pack_len();
    // Absolute, ascending K blocks outermost: the summation-order anchor.
    for (pc_i, pc) in (0..k).step_by(bs.kc).enumerate() {
        let kcb = bs.kc.min(k - pc);
        for ic in (0..m).step_by(bs.mc) {
            let mcb = bs.mc.min(m - ic);
            pack_a(a_pack, a, row0 + ic, mcb, pc, kcb, alpha);
            for jc in (0..n).step_by(bs.nc) {
                let ncb = bs.nc.min(n - jc);
                let s = ((col0 + jc) / bs.nc) * kc_blocks + pc_i;
                let sliver = &slivers[s * sliver_len..(s + 1) * sliver_len];
                micro_sweep(c, row0 + ic, mcb, col0 + jc, ncb, kcb, a_pack, sliver);
            }
        }
    }
}

/// Sweeps the micro-kernel over one packed `mcb × ncb` block pair and
/// accumulates the register tiles into `C` at absolute origin `(i_abs,
/// j_abs)`. Shared by both region drivers so the write sequence is
/// literally the same code.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn micro_sweep(
    c: COut,
    i_abs: usize,
    mcb: usize,
    j_abs: usize,
    ncb: usize,
    kcb: usize,
    a_pack: &[f32],
    b_pack: &[f32],
) {
    for jr in 0..ncb.div_ceil(NR) {
        let j0 = jr * NR;
        let cols = NR.min(ncb - j0);
        let b_panel = &b_pack[jr * kcb * NR..(jr + 1) * kcb * NR];
        for ir in 0..mcb.div_ceil(MR) {
            let i0 = ir * MR;
            let rows = MR.min(mcb - i0);
            let a_panel = &a_pack[ir * kcb * MR..(ir + 1) * kcb * MR];
            let mut acc = [[0.0f32; NR]; MR];
            micro_kernel(kcb, a_panel, b_panel, &mut acc);
            for (r, acc_row) in acc.iter().enumerate().take(rows) {
                // SAFETY: this task owns rows `[row0, row0 + m)` × cols
                // `[col0, col0 + n)` of `C` exclusively (grid partition),
                // and `i_abs + i0 + r < row0 + m`, `j_abs + j0 + cols ≤
                // col0 + n` keep the write inside that rectangle.
                unsafe { c.accumulate(i_abs + i0 + r, j_abs + j0, &acc_row[..cols]) };
            }
        }
    }
}

/// Computes `C = alpha * op(A) · op(B) + beta * C` using the calling
/// thread's reusable [`GemmScratch`].
///
/// `a` must have logical shape `m × k` after `ta` is applied and `b` must
/// have logical shape `k × n` after `tb` is applied; `c` must be `m × n`.
/// Results are bitwise identical at every thread count (see the module docs
/// for the exact summation-order contract).
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if any operand is not rank-2 and
/// [`TensorError::ShapeMismatch`] if inner or output dimensions disagree.
///
/// # Example
///
/// ```
/// use taamr_tensor::{gemm, Tensor, Transpose};
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let b = Tensor::eye(2);
/// let mut c = Tensor::zeros(&[2, 2]);
/// gemm(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c)?;
/// assert_eq!(c.as_slice(), a.as_slice());
/// # Ok::<(), taamr_tensor::TensorError>(())
/// ```
pub fn gemm(
    alpha: f32,
    a: &Tensor,
    ta: Transpose,
    b: &Tensor,
    tb: Transpose,
    beta: f32,
    c: &mut Tensor,
) -> Result<(), TensorError> {
    with_gemm_scratch(|scratch| gemm_with_scratch(alpha, a, ta, b, tb, beta, c, scratch))
}

/// The scalar reference for one GEMM output element: `acc + x · y`,
/// accumulated in the kernel's canonical [`GEMM_KC`]-blocked order.
///
/// Per block of the shared dimension (ascending), a partial sum is folded
/// from zero over ascending indices, then added to the running value —
/// exactly the per-element sequence the module docs pin down for
/// `alpha == 1`. A scalar scoring path built on this helper is therefore
/// **bitwise identical** to materialising the same products through
/// [`gemm`] with `beta == 1` into an `acc`-initialised output (or
/// `beta == 0` when `acc == 0.0`, which replicates the exact zero-fill).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn dot_blocked(acc: f32, x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "dot_blocked operand length mismatch");
    let mut acc = acc;
    let mut p0 = 0;
    while p0 < x.len() {
        let p1 = (p0 + GEMM_KC).min(x.len());
        let mut partial = 0.0f32;
        for p in p0..p1 {
            partial += x[p] * y[p];
        }
        acc += partial;
        p0 = p1;
    }
    acc
}

/// [`gemm`] with an explicit scratch arena instead of the thread-local one.
///
/// Useful when the caller manages workspace lifetimes itself (e.g. one arena
/// per worker state). Identical results and errors.
#[allow(clippy::too_many_arguments)]
pub fn gemm_with_scratch(
    alpha: f32,
    a: &Tensor,
    ta: Transpose,
    b: &Tensor,
    tb: Transpose,
    beta: f32,
    c: &mut Tensor,
    scratch: &mut GemmScratch,
) -> Result<(), TensorError> {
    gemm_blocked(alpha, a, ta, b, tb, beta, c, GEMM_BLOCKING, scratch)
}

/// [`gemm`] with explicit cache-blocking parameters — the ablation entry
/// point behind the `gemm_blocking` bench.
///
/// `blocking.mc` / `blocking.nc` only change performance. `blocking.kc`
/// changes the summation order: results are bitwise identical to [`gemm`]
/// **only** when `blocking.kc == GEMM_KC` (they remain correct to rounding
/// error otherwise).
///
/// # Errors
///
/// Returns the same shape errors as [`gemm`].
///
/// # Panics
///
/// Panics if any field of `blocking` is zero.
#[allow(clippy::too_many_arguments)]
pub fn gemm_blocked(
    alpha: f32,
    a: &Tensor,
    ta: Transpose,
    b: &Tensor,
    tb: Transpose,
    beta: f32,
    c: &mut Tensor,
    blocking: BlockSizes,
    scratch: &mut GemmScratch,
) -> Result<(), TensorError> {
    gemm_blocked_scheduled(alpha, a, ta, b, tb, beta, c, blocking, scratch, GemmSchedule::Auto)
}

/// [`gemm_blocked`] with an explicit parallel [`GemmSchedule`] — the ablation
/// entry point behind the schedule differential tests and the `scale_grid`
/// bench. Bitwise identical results for every schedule.
///
/// # Errors
///
/// Returns the same shape errors as [`gemm`].
///
/// # Panics
///
/// Panics if any field of `blocking` is zero.
#[allow(clippy::too_many_arguments)]
pub fn gemm_blocked_scheduled(
    alpha: f32,
    a: &Tensor,
    ta: Transpose,
    b: &Tensor,
    tb: Transpose,
    beta: f32,
    c: &mut Tensor,
    blocking: BlockSizes,
    scratch: &mut GemmScratch,
    schedule: GemmSchedule,
) -> Result<(), TensorError> {
    assert!(
        blocking.mc > 0 && blocking.nc > 0 && blocking.kc > 0,
        "gemm block sizes must be positive"
    );
    taamr_obs::incr(taamr_obs::Counter::GemmCalls);
    for t in [a, b, &*c] {
        if t.rank() != 2 {
            return Err(TensorError::RankMismatch { op: "gemm", expected: 2, actual: t.rank() });
        }
    }
    let (m, ka) = if ta.is_yes() {
        (a.dims()[1], a.dims()[0])
    } else {
        (a.dims()[0], a.dims()[1])
    };
    let (kb, n) = if tb.is_yes() {
        (b.dims()[1], b.dims()[0])
    } else {
        (b.dims()[0], b.dims()[1])
    };
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            op: "gemm",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    if c.dims() != [m, n] {
        return Err(TensorError::ShapeMismatch {
            op: "gemm",
            lhs: vec![m, n],
            rhs: c.dims().to_vec(),
        });
    }
    let k = ka;

    if beta != 1.0 {
        if beta == 0.0 {
            c.fill_zero();
        } else {
            c.scale(beta);
        }
    }
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return Ok(());
    }

    // Canonical pack count (the serial schedule's): counted here, at the
    // semantic entry point, so the telemetry value is invariant under thread
    // count even though parallel tasks re-pack B slivers per row range.
    let (jcs, kbs, ics) =
        (n.div_ceil(blocking.nc) as u64, k.div_ceil(blocking.kc) as u64, m.div_ceil(blocking.mc) as u64);
    taamr_obs::add(taamr_obs::Counter::GemmPanelPacks, jcs * kbs * (1 + ics));

    let a_ref = MatRef { data: a.as_slice(), ld: a.dims()[1], trans: ta.is_yes() };
    let b_ref = MatRef { data: b.as_slice(), ld: b.dims()[1], trans: tb.is_yes() };
    let c_data = c.as_mut_slice();
    let c_out = COut { ptr: c_data.as_mut_ptr(), ldc: n };
    let per_task = blocking.pack_len();

    let threads = rayon::current_num_threads();
    let tasks = if threads > 1 && m * n * k >= PAR_MIN_WORK {
        // Work-stealing-friendly grid: NC-aligned column stripes ×
        // MR-aligned row blocks, oversubscribed so early finishers steal the
        // tail. The partition depends only on shape and thread policy and is
        // invisible to the summation order — every output element is owned
        // by exactly one task walking the absolute K blocks ascending.
        block_grid(m, n, MR, blocking.nc, threads * rayon::CHUNKS_PER_WORKER)
    } else {
        Vec::new()
    };
    if tasks.len() <= 1 {
        let buf = scratch.ensure(per_task);
        region_per_task(c_out, 0, m, 0, n, k, alpha, a_ref, b_ref, blocking, buf);
        return Ok(());
    }

    let kc_blocks = k.div_ceil(blocking.kc);
    let sliver_len = blocking.b_pack_len();
    let shared_len = n.div_ceil(blocking.nc) * kc_blocks * sliver_len;
    let use_shared = match schedule {
        GemmSchedule::Auto => shared_len <= SHARED_PACK_CAP,
        GemmSchedule::SharedPack => true,
        GemmSchedule::PerTaskPack => false,
    };
    if use_shared {
        // Cooperative schedule: every KC × NC sliver of op(B) is packed
        // exactly once (in parallel — slivers are disjoint and packing is a
        // pure copy), then all tasks read the shared arena while packing
        // only their own op(A) rows. Total packing work thus matches the
        // serial schedule instead of scaling with the task count.
        let a_len = blocking.a_pack_len();
        let buf = scratch.ensure(shared_len + tasks.len() * a_len);
        let (b_buf, a_buf) = buf.split_at_mut(shared_len);
        b_buf.par_chunks_mut(sliver_len).enumerate().for_each(|(s, dst)| {
            let jc = (s / kc_blocks) * blocking.nc;
            let pc = (s % kc_blocks) * blocking.kc;
            pack_b(dst, b_ref, pc, blocking.kc.min(k - pc), jc, blocking.nc.min(n - jc));
        });
        let slivers: &[f32] = b_buf;
        let work: Vec<(GridTask, &mut [f32])> =
            tasks.into_iter().zip(a_buf.chunks_mut(a_len)).collect();
        work.into_par_iter().for_each(|(t, a_pack)| {
            region_shared_b(
                c_out,
                t.rows.start,
                t.rows.len(),
                t.cols.start,
                t.cols.len(),
                k,
                alpha,
                a_ref,
                blocking,
                slivers,
                a_pack,
            );
        });
    } else {
        let buf = scratch.ensure(per_task * tasks.len());
        let work: Vec<(GridTask, &mut [f32])> =
            tasks.into_iter().zip(buf.chunks_mut(per_task)).collect();
        work.into_par_iter().for_each(|(t, pack)| {
            region_per_task(
                c_out,
                t.rows.start,
                t.rows.len(),
                t.cols.start,
                t.cols.len(),
                k,
                alpha,
                a_ref,
                b_ref,
                blocking,
                pack,
            );
        });
    }
    Ok(())
}

impl Tensor {
    /// Matrix product `self · rhs` of two rank-2 tensors.
    ///
    /// # Errors
    ///
    /// Returns the same errors as [`gemm`].
    pub fn matmul(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "matmul",
                expected: 2,
                actual: self.rank(),
            });
        }
        if rhs.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "matmul",
                expected: 2,
                actual: rhs.rank(),
            });
        }
        let mut out = Tensor::zeros(&[self.dims()[0], rhs.dims()[1]]);
        gemm(1.0, self, Transpose::No, rhs, Transpose::No, 0.0, &mut out)?;
        Ok(out)
    }

    /// Matrix–vector product of a rank-2 tensor with a rank-1 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `self.cols != v.len()`.
    pub fn matvec(&self, v: &Tensor) -> Result<Tensor, TensorError> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "matvec",
                expected: 2,
                actual: self.rank(),
            });
        }
        let (r, c) = (self.dims()[0], self.dims()[1]);
        if v.len() != c {
            return Err(TensorError::ShapeMismatch {
                op: "matvec",
                lhs: self.dims().to_vec(),
                rhs: v.dims().to_vec(),
            });
        }
        let mut out = Tensor::zeros(&[r]);
        for i in 0..r {
            out.data[i] = self.data[i * c..(i + 1) * c]
                .iter()
                .zip(v.as_slice())
                .map(|(&a, &b)| a * b)
                .sum();
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive reference used to validate the blocked kernel.
    fn naive(a: &Tensor, ta: Transpose, b: &Tensor, tb: Transpose) -> Tensor {
        let (m, k) = if ta.is_yes() {
            (a.dims()[1], a.dims()[0])
        } else {
            (a.dims()[0], a.dims()[1])
        };
        let n = if tb.is_yes() { b.dims()[0] } else { b.dims()[1] };
        let mut c = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for p in 0..k {
                    let av = if ta.is_yes() { a.at(&[p, i]) } else { a.at(&[i, p]) };
                    let bv = if tb.is_yes() { b.at(&[j, p]) } else { b.at(&[p, j]) };
                    s += av * bv;
                }
                *c.at_mut(&[i, j]) = s;
            }
        }
        c
    }

    fn seq(dims: &[usize]) -> Tensor {
        let n: usize = dims.iter().product();
        Tensor::from_vec((0..n).map(|i| (i as f32 * 0.37).sin()).collect(), dims).unwrap()
    }

    fn assert_close(a: &Tensor, b: &Tensor) {
        assert_eq!(a.dims(), b.dims());
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_matches_naive_small() {
        let a = seq(&[3, 4]);
        let b = seq(&[4, 5]);
        assert_close(&a.matmul(&b).unwrap(), &naive(&a, Transpose::No, &b, Transpose::No));
    }

    #[test]
    fn matmul_matches_naive_larger_than_block() {
        let a = seq(&[70, 65]);
        let b = seq(&[65, 90]);
        assert_close(&a.matmul(&b).unwrap(), &naive(&a, Transpose::No, &b, Transpose::No));
    }

    #[test]
    fn all_transpose_combinations_match_naive() {
        let cases = [
            (Transpose::No, Transpose::No, [7usize, 5], [5usize, 9]),
            (Transpose::Yes, Transpose::No, [5, 7], [5, 9]),
            (Transpose::No, Transpose::Yes, [7, 5], [9, 5]),
            (Transpose::Yes, Transpose::Yes, [5, 7], [9, 5]),
        ];
        for (ta, tb, da, db) in cases {
            let a = seq(&da);
            let b = seq(&db);
            let mut c = Tensor::zeros(&[7, 9]);
            gemm(1.0, &a, ta, &b, tb, 0.0, &mut c).unwrap();
            assert_close(&c, &naive(&a, ta, &b, tb));
        }
    }

    #[test]
    fn alpha_beta_accumulate() {
        let a = seq(&[4, 4]);
        let b = seq(&[4, 4]);
        let mut c = Tensor::ones(&[4, 4]);
        gemm(2.0, &a, Transpose::No, &b, Transpose::No, 3.0, &mut c).unwrap();
        let expected =
            &naive(&a, Transpose::No, &b, Transpose::No).scaled(2.0) + &Tensor::full(&[4, 4], 3.0);
        assert_close(&c, &expected);
    }

    #[test]
    fn identity_is_neutral() {
        let a = seq(&[6, 6]);
        assert_close(&a.matmul(&Tensor::eye(6)).unwrap(), &a);
        assert_close(&Tensor::eye(6).matmul(&a).unwrap(), &a);
    }

    #[test]
    fn dimension_errors() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 5]);
        assert!(a.matmul(&b).is_err());
        let mut c = Tensor::zeros(&[2, 2]);
        assert!(gemm(1.0, &a, Transpose::No, &Tensor::zeros(&[3, 5]), Transpose::No, 0.0, &mut c)
            .is_err());
        assert!(Tensor::zeros(&[2]).matmul(&b).is_err());
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = seq(&[5, 7]);
        let v = seq(&[7]);
        let mv = a.matvec(&v).unwrap();
        let mm = a.matmul(&v.reshaped(&[7, 1]).unwrap()).unwrap();
        for i in 0..5 {
            assert!((mv.as_slice()[i] - mm.as_slice()[i]).abs() < 1e-5);
        }
        assert!(a.matvec(&seq(&[6])).is_err());
    }

    #[test]
    fn zero_k_dimension_yields_beta_c() {
        let a = Tensor::zeros(&[3, 0]);
        let b = Tensor::zeros(&[0, 2]);
        let mut c = Tensor::ones(&[3, 2]);
        gemm(1.0, &a, Transpose::No, &b, Transpose::No, 0.5, &mut c).unwrap();
        assert!(c.iter().all(|&v| v == 0.5));
    }

    #[test]
    fn explicit_scratch_matches_thread_local_path_bitwise() {
        let a = seq(&[37, 53]);
        let b = seq(&[53, 29]);
        let mut c1 = Tensor::zeros(&[37, 29]);
        gemm(0.7, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c1).unwrap();
        let mut scratch = GemmScratch::new();
        let mut c2 = Tensor::zeros(&[37, 29]);
        gemm_with_scratch(0.7, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c2, &mut scratch)
            .unwrap();
        assert_eq!(c1, c2);
        assert!(scratch.capacity() >= GEMM_BLOCKING.pack_len());
    }

    #[test]
    fn custom_mc_nc_blocking_is_bitwise_neutral() {
        // mc/nc are pure perf knobs; only kc participates in the summation
        // order. Same kc => same bits, for sizes straddling block edges.
        let a = seq(&[67, 130]);
        let b = seq(&[130, 71]);
        let mut base = Tensor::zeros(&[67, 71]);
        gemm(1.3, &a, Transpose::No, &b, Transpose::No, 0.0, &mut base).unwrap();
        for bs in [
            BlockSizes { mc: 8, nc: 16, kc: GEMM_KC },
            BlockSizes { mc: 3, nc: 5, kc: GEMM_KC },
            BlockSizes { mc: 256, nc: 1024, kc: GEMM_KC },
        ] {
            let mut c = Tensor::zeros(&[67, 71]);
            let mut scratch = GemmScratch::new();
            gemm_blocked(1.3, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c, bs, &mut scratch)
                .unwrap();
            let same = base.iter().zip(c.iter()).all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(same, "blocking {bs:?} changed bits");
        }
    }

    #[test]
    fn smaller_kc_still_correct_to_rounding() {
        let a = seq(&[20, 300]);
        let b = seq(&[300, 20]);
        let mut c = Tensor::zeros(&[20, 20]);
        let mut scratch = GemmScratch::new();
        let bs = BlockSizes { mc: 64, nc: 64, kc: 32 };
        gemm_blocked(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c, bs, &mut scratch)
            .unwrap();
        assert_close(&c, &naive(&a, Transpose::No, &b, Transpose::No));
    }

    #[test]
    #[should_panic(expected = "block sizes must be positive")]
    fn zero_block_size_rejected() {
        let a = seq(&[2, 2]);
        let b = seq(&[2, 2]);
        let mut c = Tensor::zeros(&[2, 2]);
        let _ = gemm_blocked(
            1.0,
            &a,
            Transpose::No,
            &b,
            Transpose::No,
            0.0,
            &mut c,
            BlockSizes { mc: 0, nc: 64, kc: 64 },
            &mut GemmScratch::new(),
        );
    }
}
