//! Reusable workspace buffers for the GEMM and convolution hot paths.
//!
//! The packed-panel GEMM kernel needs contiguous scratch for its A/B panels,
//! and the `im2col`-lowered convolution path materialises several
//! multi-megabyte intermediates (`cols`, the GEMM output matrix, the column
//! gradient) on every forward/backward call. Allocating those afresh per
//! call dominates the attack loop's runtime with page faults, so this module
//! provides two reusable arenas:
//!
//! * [`GemmScratch`] — a flat `f32` buffer the kernel partitions into per-task
//!   A/B packing panels (and, on the column-parallel path, per-stripe output
//!   staging). Pass one explicitly to
//!   [`gemm_with_scratch`](crate::gemm_with_scratch), or let
//!   [`gemm`](crate::gemm) borrow the calling thread's.
//! * [`ConvScratch`] — the convolution lowering's reusable intermediates,
//!   lent out per call through [`with_conv_scratch`].
//!
//! Both default to **thread-local** storage: a thread that runs many GEMMs or
//! conv layers (the trainer loop, a PGD attack worker iterating ten gradient
//! steps) allocates once and reuses the high-water-mark buffer thereafter.
//! Worker threads spawned by a parallel region get their own arenas that live
//! for the whole region, so a worker attacking a chunk of items still reuses
//! its buffers across every item and every gradient step.
//!
//! Reuse is observable two ways: the process-global
//! [`Counter::ScratchReuseHits`](taamr_obs::Counter::ScratchReuseHits) /
//! [`Counter::ScratchGrows`](taamr_obs::Counter::ScratchGrows) telemetry
//! counters (scheduling-dependent — see the `taamr-obs` docs), and the
//! per-thread [`conv_scratch_footprint`] / [`gemm_scratch_footprint`] probes
//! used by the regression tests, which are exact for single-threaded runs.
//!
//! Scratch contents never influence results: every buffer is fully
//! overwritten (or explicitly zeroed) before it is read, so a reused arena is
//! bitwise indistinguishable from a fresh allocation.

use std::cell::RefCell;

use crate::Tensor;

/// Records whether an `ensure`/reset reused the existing allocation or had
/// to grow it, in the global telemetry counters.
pub(crate) fn count_reuse(grew: bool) {
    taamr_obs::incr(if grew {
        taamr_obs::Counter::ScratchGrows
    } else {
        taamr_obs::Counter::ScratchReuseHits
    });
}

/// A reusable flat workspace for the packed-panel GEMM kernel.
///
/// The kernel calls [`GemmScratch::ensure`] once per `gemm` and carves the
/// returned slice into per-task packing panels. The buffer only ever grows
/// (to the high-water mark of the shapes seen), so steady-state workloads —
/// repeated attack steps, training epochs — stop allocating entirely.
///
/// # Example
///
/// ```
/// use taamr_tensor::{gemm_with_scratch, GemmScratch, Tensor, Transpose};
///
/// let a = Tensor::eye(8);
/// let b = Tensor::eye(8);
/// let mut c = Tensor::zeros(&[8, 8]);
/// let mut scratch = GemmScratch::new();
/// gemm_with_scratch(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c, &mut scratch)?;
/// assert!(scratch.capacity() > 0);
/// # Ok::<(), taamr_tensor::TensorError>(())
/// ```
#[derive(Debug, Default)]
pub struct GemmScratch {
    buf: Vec<f32>,
}

impl GemmScratch {
    /// Creates an empty scratch; the first use sizes it.
    pub const fn new() -> Self {
        GemmScratch { buf: Vec::new() }
    }

    /// Current capacity in `f32` elements (the high-water mark).
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Returns a slice of at least `len` floats, growing only when the
    /// current allocation cannot hold it. Contents are unspecified; callers
    /// must overwrite before reading.
    pub(crate) fn ensure(&mut self, len: usize) -> &mut [f32] {
        count_reuse(len > self.buf.capacity());
        if self.buf.len() < len {
            self.buf.resize(len, 0.0);
        }
        &mut self.buf[..len]
    }
}

/// Reusable intermediates for the `im2col`-lowered convolution path.
///
/// These are pure workspaces — fully rewritten by every forward/backward
/// call — unlike a layer's cached `cols` activation, which is semantic state
/// and stays on the layer. Borrow the calling thread's instance with
/// [`with_conv_scratch`].
#[derive(Debug)]
pub struct ConvScratch {
    /// Forward GEMM output (`OC × N·OH·OW`) before the NCHW permute.
    pub out_mat: Tensor,
    /// Backward: `grad_output` permuted to `OC × N·OH·OW`.
    pub grad_mat: Tensor,
    /// Backward: column-space input gradient fed to `col2im`.
    pub grad_cols: Tensor,
}

impl ConvScratch {
    fn new() -> Self {
        ConvScratch {
            out_mat: Tensor::zeros(&[0]),
            grad_mat: Tensor::zeros(&[0]),
            grad_cols: Tensor::zeros(&[0]),
        }
    }

    /// Total capacity of the held buffers, in `f32` elements.
    pub fn footprint(&self) -> usize {
        self.out_mat.data.capacity() + self.grad_mat.data.capacity() + self.grad_cols.data.capacity()
    }
}

thread_local! {
    static GEMM_SCRATCH: RefCell<GemmScratch> = const { RefCell::new(GemmScratch::new()) };
    static CONV_SCRATCH: RefCell<ConvScratch> = RefCell::new(ConvScratch::new());
}

/// Runs `f` with the calling thread's [`GemmScratch`].
///
/// Falls back to a fresh temporary if the thread-local is already borrowed
/// (a re-entrant kernel call), so this can never panic.
pub fn with_gemm_scratch<R>(f: impl FnOnce(&mut GemmScratch) -> R) -> R {
    GEMM_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut GemmScratch::new()),
    })
}

/// Runs `f` with the calling thread's [`ConvScratch`].
///
/// Falls back to a fresh temporary if the thread-local is already borrowed
/// (nested convolution lowering), so this can never panic.
pub fn with_conv_scratch<R>(f: impl FnOnce(&mut ConvScratch) -> R) -> R {
    CONV_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut ConvScratch::new()),
    })
}

/// Capacity (in `f32`s) of the calling thread's conv scratch — the
/// regression probe proving repeated pipeline calls reuse rather than regrow.
pub fn conv_scratch_footprint() -> usize {
    CONV_SCRATCH.with(|cell| cell.borrow().footprint())
}

/// Capacity (in `f32`s) of the calling thread's GEMM packing scratch.
pub fn gemm_scratch_footprint() -> usize {
    GEMM_SCRATCH.with(|cell| cell.borrow().capacity())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensure_grows_then_reuses() {
        let mut s = GemmScratch::new();
        assert_eq!(s.capacity(), 0);
        s.ensure(100)[0] = 1.0;
        let cap = s.capacity();
        assert!(cap >= 100);
        s.ensure(50);
        s.ensure(100);
        assert_eq!(s.capacity(), cap, "smaller requests must not reallocate");
    }

    #[test]
    fn thread_local_scratch_persists_across_calls() {
        with_gemm_scratch(|s| {
            s.ensure(64);
        });
        assert!(gemm_scratch_footprint() >= 64);
        let before = gemm_scratch_footprint();
        with_gemm_scratch(|s| {
            s.ensure(32);
        });
        assert_eq!(gemm_scratch_footprint(), before);
    }

    #[test]
    fn conv_scratch_footprint_tracks_buffers() {
        with_conv_scratch(|s| {
            s.out_mat.reset_to_zeros(&[4, 9]);
            s.grad_cols.reset_to_zeros(&[10, 10]);
        });
        assert!(conv_scratch_footprint() >= 136);
    }

    #[test]
    fn reentrant_borrow_falls_back_to_temporary() {
        with_gemm_scratch(|outer| {
            outer.ensure(16);
            // A nested borrow must not panic; it sees a fresh scratch.
            with_gemm_scratch(|inner| {
                assert_eq!(inner.capacity(), 0);
            });
        });
    }
}
