//! Seeded random tensor initialisation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};

use crate::Tensor;

impl Tensor {
    /// Tensor with elements drawn uniformly from `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn rand_uniform(dims: &[usize], lo: f32, hi: f32, rng: &mut impl Rng) -> Self {
        assert!(lo < hi, "uniform bounds inverted: [{lo}, {hi})");
        let mut t = Tensor::zeros(dims);
        for v in t.iter_mut() {
            *v = rng.gen_range(lo..hi);
        }
        t
    }

    /// Tensor with elements drawn from `N(mean, std²)`.
    ///
    /// # Panics
    ///
    /// Panics if `std` is negative or non-finite.
    pub fn randn(dims: &[usize], mean: f32, std: f32, rng: &mut impl Rng) -> Self {
        let normal = Normal::new(mean, std).expect("invalid normal parameters");
        let mut t = Tensor::zeros(dims);
        for v in t.iter_mut() {
            *v = normal.sample(rng);
        }
        t
    }

    /// He (Kaiming) normal initialisation for layers followed by ReLU:
    /// `N(0, sqrt(2 / fan_in))`.
    ///
    /// # Panics
    ///
    /// Panics if `fan_in` is zero.
    pub fn he_normal(dims: &[usize], fan_in: usize, rng: &mut impl Rng) -> Self {
        assert!(fan_in > 0, "fan_in must be positive");
        Self::randn(dims, 0.0, (2.0 / fan_in as f32).sqrt(), rng)
    }

    /// Xavier (Glorot) uniform initialisation:
    /// `U(−a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
    ///
    /// # Panics
    ///
    /// Panics if `fan_in + fan_out` is zero.
    pub fn xavier_uniform(
        dims: &[usize],
        fan_in: usize,
        fan_out: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(fan_in + fan_out > 0, "fan sum must be positive");
        let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
        Self::rand_uniform(dims, -a, a, rng)
    }
}

/// Creates a deterministic RNG from a 64-bit seed.
///
/// All stochastic components in the reproduction accept a seed so that every
/// experiment is bit-for-bit reproducible.
///
/// # Example
///
/// ```
/// use taamr_tensor::{seeded_rng, Tensor};
///
/// let mut a = seeded_rng(42);
/// let mut b = seeded_rng(42);
/// assert_eq!(
///     Tensor::rand_uniform(&[4], 0.0, 1.0, &mut a),
///     Tensor::rand_uniform(&[4], 0.0, 1.0, &mut b),
/// );
/// ```
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = seeded_rng(1);
        let t = Tensor::rand_uniform(&[1000], -0.5, 0.5, &mut rng);
        assert!(t.iter().all(|&v| (-0.5..0.5).contains(&v)));
    }

    #[test]
    fn randn_has_roughly_correct_moments() {
        let mut rng = seeded_rng(2);
        let t = Tensor::randn(&[20_000], 1.0, 2.0, &mut rng);
        let mean = t.mean();
        let var = t.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / t.len() as f32;
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn he_scales_with_fan_in() {
        let mut rng = seeded_rng(3);
        let narrow = Tensor::he_normal(&[10_000], 8, &mut rng);
        let wide = Tensor::he_normal(&[10_000], 512, &mut rng);
        assert!(narrow.norm_l2() > wide.norm_l2());
    }

    #[test]
    fn same_seed_same_tensor() {
        let a = Tensor::randn(&[16], 0.0, 1.0, &mut seeded_rng(7));
        let b = Tensor::randn(&[16], 0.0, 1.0, &mut seeded_rng(7));
        let c = Tensor::randn(&[16], 0.0, 1.0, &mut seeded_rng(8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn xavier_respects_symmetric_bound() {
        let mut rng = seeded_rng(4);
        let t = Tensor::xavier_uniform(&[5000], 30, 30, &mut rng);
        let a = (6.0f32 / 60.0).sqrt();
        assert!(t.iter().all(|&v| v.abs() <= a));
    }
}
