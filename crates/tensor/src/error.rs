use std::fmt;

/// Errors produced by tensor construction and shape-sensitive operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of elements implied by a shape does not match the data.
    LengthMismatch {
        /// Elements implied by the requested shape.
        expected: usize,
        /// Elements actually supplied.
        actual: usize,
    },
    /// Two operands have incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Human-readable operation name (e.g. `"add"`, `"matmul"`).
        op: &'static str,
        /// Shape of the left operand.
        lhs: Vec<usize>,
        /// Shape of the right operand.
        rhs: Vec<usize>,
    },
    /// An axis index was out of range for the tensor's rank.
    AxisOutOfRange {
        /// The offending axis.
        axis: usize,
        /// The tensor's rank.
        rank: usize,
    },
    /// The operation requires a tensor of a specific rank.
    RankMismatch {
        /// Human-readable operation name.
        op: &'static str,
        /// Required rank.
        expected: usize,
        /// Actual rank.
        actual: usize,
    },
    /// An empty shape or zero-sized dimension where not permitted.
    EmptyTensor {
        /// Human-readable operation name.
        op: &'static str,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => {
                write!(f, "shape implies {expected} elements but data has {actual}")
            }
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "incompatible shapes for {op}: {lhs:?} vs {rhs:?}")
            }
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank-{rank} tensor")
            }
            TensorError::RankMismatch { op, expected, actual } => {
                write!(f, "{op} requires rank {expected} but tensor has rank {actual}")
            }
            TensorError::EmptyTensor { op } => {
                write!(f, "{op} requires a non-empty tensor")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs: Vec<TensorError> = vec![
            TensorError::LengthMismatch { expected: 4, actual: 3 },
            TensorError::ShapeMismatch { op: "add", lhs: vec![2], rhs: vec![3] },
            TensorError::AxisOutOfRange { axis: 5, rank: 2 },
            TensorError::RankMismatch { op: "matmul", expected: 2, actual: 1 },
            TensorError::EmptyTensor { op: "argmax" },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
