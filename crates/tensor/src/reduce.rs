//! Reductions over [`Tensor`] values.

use crate::{Tensor, TensorError};

impl Tensor {
    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements; 0 for an empty tensor.
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Maximum element.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyTensor`] if the tensor is empty.
    pub fn max(&self) -> Result<f32, TensorError> {
        self.data
            .iter()
            .copied()
            .fold(None, |m: Option<f32>, v| Some(m.map_or(v, |m| m.max(v))))
            .ok_or(TensorError::EmptyTensor { op: "max" })
    }

    /// Minimum element.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyTensor`] if the tensor is empty.
    pub fn min(&self) -> Result<f32, TensorError> {
        self.data
            .iter()
            .copied()
            .fold(None, |m: Option<f32>, v| Some(m.map_or(v, |m| m.min(v))))
            .ok_or(TensorError::EmptyTensor { op: "min" })
    }

    /// Index of the maximum element (first occurrence on ties).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyTensor`] if the tensor is empty.
    pub fn argmax(&self) -> Result<usize, TensorError> {
        if self.is_empty() {
            return Err(TensorError::EmptyTensor { op: "argmax" });
        }
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        Ok(best)
    }

    /// Per-row argmax of a rank-2 tensor: returns one index per row.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices and
    /// [`TensorError::EmptyTensor`] if rows have zero width.
    pub fn argmax_rows(&self) -> Result<Vec<usize>, TensorError> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "argmax_rows",
                expected: 2,
                actual: self.rank(),
            });
        }
        let (r, c) = (self.dims()[0], self.dims()[1]);
        if c == 0 {
            return Err(TensorError::EmptyTensor { op: "argmax_rows" });
        }
        let mut out = Vec::with_capacity(r);
        for i in 0..r {
            let row = &self.data[i * c..(i + 1) * c];
            let mut best = 0;
            for (j, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = j;
                }
            }
            out.push(best);
        }
        Ok(out)
    }

    /// Sums a rank-2 tensor along axis 0, producing a length-`cols` tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn sum_axis0(&self) -> Result<Tensor, TensorError> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "sum_axis0",
                expected: 2,
                actual: self.rank(),
            });
        }
        let (r, c) = (self.dims()[0], self.dims()[1]);
        let mut out = Tensor::zeros(&[c]);
        for i in 0..r {
            for j in 0..c {
                out.data[j] += self.data[i * c + j];
            }
        }
        Ok(out)
    }

    /// Mean squared difference between two same-shaped tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn mse(&self, other: &Tensor) -> Result<f32, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op: "mse",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        if self.is_empty() {
            return Ok(0.0);
        }
        let sum: f32 =
            self.data.iter().zip(&other.data).map(|(&a, &b)| (a - b) * (a - b)).sum();
        Ok(sum / self.len() as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_reductions() {
        let t = Tensor::from_slice(&[1.0, -2.0, 3.0, 0.0]);
        assert_eq!(t.sum(), 2.0);
        assert_eq!(t.mean(), 0.5);
        assert_eq!(t.max().unwrap(), 3.0);
        assert_eq!(t.min().unwrap(), -2.0);
        assert_eq!(t.argmax().unwrap(), 2);
    }

    #[test]
    fn empty_reductions_error_or_default() {
        let e = Tensor::zeros(&[0]);
        assert!(e.max().is_err());
        assert!(e.min().is_err());
        assert!(e.argmax().is_err());
        assert_eq!(e.mean(), 0.0);
    }

    #[test]
    fn argmax_ties_break_to_first() {
        let t = Tensor::from_slice(&[1.0, 3.0, 3.0]);
        assert_eq!(t.argmax().unwrap(), 1);
    }

    #[test]
    fn argmax_rows_per_row() {
        let t = Tensor::from_vec(vec![1.0, 5.0, 2.0, 9.0, 0.0, 3.0], &[2, 3]).unwrap();
        assert_eq!(t.argmax_rows().unwrap(), vec![1, 0]);
        assert!(Tensor::zeros(&[3]).argmax_rows().is_err());
    }

    #[test]
    fn sum_axis0_matches_manual() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        assert_eq!(t.sum_axis0().unwrap().as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn mse_of_identical_is_zero() {
        let t = Tensor::from_slice(&[1.0, 2.0]);
        assert_eq!(t.mse(&t).unwrap(), 0.0);
        let u = Tensor::from_slice(&[3.0, 4.0]);
        assert_eq!(t.mse(&u).unwrap(), 4.0);
        assert!(t.mse(&Tensor::zeros(&[3])).is_err());
    }
}
