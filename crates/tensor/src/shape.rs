use std::fmt;

use crate::TensorError;

/// A row-major tensor shape.
///
/// `Shape` stores the dimension sizes of a tensor. Indexing is row-major:
/// the last dimension varies fastest.
///
/// # Example
///
/// ```
/// use taamr_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from dimension sizes.
    pub fn new(dims: &[usize]) -> Self {
        Shape { dims: dims.to_vec() }
    }

    /// The dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (product of dimensions; 1 for a scalar shape).
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the shape contains zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size of dimension `axis`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] if `axis >= rank`.
    pub fn dim(&self, axis: usize) -> Result<usize, TensorError> {
        self.dims
            .get(axis)
            .copied()
            .ok_or(TensorError::AxisOutOfRange { axis, rank: self.rank() })
    }

    /// Row-major strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Flattens a multi-dimensional index into a linear offset.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `index` has the wrong rank or is out of
    /// bounds; release builds produce an unspecified offset.
    pub fn offset(&self, index: &[usize]) -> usize {
        debug_assert_eq!(index.len(), self.rank(), "index rank mismatch");
        let mut off = 0;
        let mut stride = 1;
        for (i, (&ix, &d)) in index.iter().zip(&self.dims).enumerate().rev() {
            debug_assert!(ix < d, "index {ix} out of bounds for dim {i} of size {d}");
            let _ = i;
            off += ix * stride;
            stride *= d;
        }
        off
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[5]).strides(), vec![1]);
        assert_eq!(Shape::new(&[]).strides(), Vec::<usize>::new());
    }

    #[test]
    fn offset_round_trips_all_indices() {
        let s = Shape::new(&[2, 3, 4]);
        let mut seen = vec![false; s.len()];
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    let off = s.offset(&[i, j, k]);
                    assert!(!seen[off], "duplicate offset {off}");
                    seen[off] = true;
                }
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn scalar_shape_has_one_element() {
        let s = Shape::new(&[]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.offset(&[]), 0);
    }

    #[test]
    fn dim_out_of_range_errors() {
        let s = Shape::new(&[2, 3]);
        assert_eq!(s.dim(1).unwrap(), 3);
        assert!(matches!(s.dim(2), Err(TensorError::AxisOutOfRange { axis: 2, rank: 2 })));
    }

    #[test]
    fn display_formats_like_a_list() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2, 3]");
        assert_eq!(Shape::new(&[]).to_string(), "[]");
    }

    #[test]
    fn zero_dim_is_empty() {
        assert!(Shape::new(&[2, 0, 3]).is_empty());
        assert!(!Shape::new(&[2, 1, 3]).is_empty());
    }
}
