//! Property-based tests of the attack implementations: the threat model
//! (l∞ ≤ ε, valid pixel range) must hold for *every* budget, goal, and
//! input, not just the unit-test fixtures.

use proptest::prelude::*;
use taamr_attack::{Attack, AttackGoal, Bim, Epsilon, Fgsm, Pgd};
use taamr_nn::{TinyResNet, TinyResNetConfig};
use taamr_tensor::{seeded_rng, Tensor};

fn image_batch(seed: u64) -> Tensor {
    Tensor::rand_uniform(&[2, 3, 16, 16], 0.0, 1.0, &mut seeded_rng(seed))
}

fn net(seed: u64) -> TinyResNet {
    TinyResNet::new(&TinyResNetConfig::tiny_for_tests(4), &mut seeded_rng(seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn all_attacks_respect_the_threat_model(
        eps_255 in 1.0f32..32.0,
        target in 0usize..4,
        img_seed in 0u64..100,
        net_seed in 0u64..10,
        targeted in any::<bool>()
    ) {
        let eps = Epsilon::from_255(eps_255);
        let x = image_batch(img_seed);
        let mut model = net(net_seed);
        let goal = if targeted {
            AttackGoal::Targeted(target)
        } else {
            AttackGoal::Untargeted(target)
        };
        let attacks: Vec<Box<dyn Attack>> = vec![
            Box::new(Fgsm::new(eps)),
            Box::new(Bim::new(eps, 3)),
            Box::new(Pgd::with_steps(eps, 3)),
        ];
        for attack in attacks {
            let mut rng = seeded_rng(img_seed + 1);
            let adv = attack.perturb(&mut model, &x, goal, &mut rng);
            prop_assert!(
                adv.linf_distance(&x) <= eps.as_fraction() + 1e-6,
                "{} exceeded the l∞ ball",
                attack.name()
            );
            prop_assert!(adv.images.iter().all(|&v| (0.0..=1.0).contains(&v)));
            prop_assert_eq!(adv.images.dims(), x.dims());
            prop_assert_eq!(adv.predictions.len(), 2);
            // Success flags agree with predictions under the goal.
            for (p, s) in adv.predictions.iter().zip(&adv.success) {
                prop_assert_eq!(*s, goal.is_success(*p));
            }
        }
    }

    #[test]
    fn zero_like_epsilon_means_almost_no_change(img_seed in 0u64..50) {
        let eps = Epsilon::from_255(0.25); // a quarter of a pixel level
        let x = image_batch(img_seed);
        let mut model = net(0);
        let mut rng = seeded_rng(img_seed);
        let adv = Fgsm::new(eps).perturb(&mut model, &x, AttackGoal::Targeted(0), &mut rng);
        prop_assert!(adv.linf_distance(&x) <= 0.25 / 255.0 + 1e-7);
    }

    #[test]
    fn epsilon_ball_nesting(img_seed in 0u64..30, net_seed in 0u64..5) {
        // A smaller budget can never produce a larger max distortion for
        // the deterministic FGSM.
        let x = image_batch(img_seed);
        let mut model = net(net_seed);
        let mut rng = seeded_rng(1);
        let goal = AttackGoal::Targeted(1);
        let small =
            Fgsm::new(Epsilon::from_255(4.0)).perturb(&mut model, &x, goal, &mut rng);
        let large =
            Fgsm::new(Epsilon::from_255(8.0)).perturb(&mut model, &x, goal, &mut rng);
        prop_assert!(small.linf_distance(&x) <= large.linf_distance(&x) + 1e-6);
    }
}
