//! Property-based tests of the attack suite: every attacker must respect
//! its *declared* [`Budget`] (`l∞` pixel balls and `l2` embedding balls)
//! for every budget, goal, and input; every attacker family must be
//! bitwise-deterministic under the thread count; and black-box budget
//! exhaustion must surface as a typed error, never a panic.

use proptest::prelude::*;
use taamr_attack::{
    Attack, AttackError, AttackGoal, Bim, EmbedAttack, EmbedTarget, Epsilon, Fgsm, OracleTarget,
    Pgd, SpsaAttack, WhiteBox, WhiteBoxTarget,
};
use taamr_nn::{ImageClassifier, TinyResNet, TinyResNetConfig};
use taamr_recsys::{Recommender, Vbpr, VbprConfig, VisualRecommender};
use taamr_tensor::{seeded_rng, Tensor};

fn image_batch(seed: u64) -> Tensor {
    Tensor::rand_uniform(&[2, 3, 16, 16], 0.0, 1.0, &mut seeded_rng(seed))
}

fn net(seed: u64) -> TinyResNet {
    TinyResNet::new(&TinyResNetConfig::tiny_for_tests(4), &mut seeded_rng(seed))
}

/// A VBPR model whose item features are the l2-normalised deep features of
/// `images` — the same wiring the pipeline uses, so oracle queries of a
/// clean image land on the memo-seeded clean feature.
fn vbpr_over(net: &mut TinyResNet, images: &Tensor, num_users: usize) -> Vbpr {
    let n = images.dims()[0];
    let d = net.feature_dim();
    let mut rows = net.features(images).as_slice().to_vec();
    for r in 0..n {
        let row = &mut rows[r * d..(r + 1) * d];
        let norm = row.iter().map(|v| v * v).sum::<f32>().sqrt();
        if norm > 1e-12 {
            for v in row.iter_mut() {
                *v /= norm;
            }
        }
    }
    Vbpr::new(num_users, n, d, rows, VbprConfig::default(), &mut seeded_rng(900))
}

/// Per-item clean baselines: probe-mean scores with the same f64
/// accumulation the oracle uses.
fn baselines(model: &Vbpr, probes: std::ops::Range<usize>) -> Vec<(u64, f32)> {
    (0..model.num_items() as u64)
        .map(|item| {
            let mut sum = 0.0f64;
            for u in probes.clone() {
                sum += f64::from(model.score(u, item as usize));
            }
            (item, (sum / probes.len().max(1) as f64) as f32)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn white_box_pixel_attacks_respect_their_declared_budget(
        eps_255 in 1.0f32..32.0,
        target in 0usize..4,
        img_seed in 0u64..100,
        net_seed in 0u64..10,
        targeted in any::<bool>()
    ) {
        let eps = Epsilon::from_255(eps_255);
        let x = image_batch(img_seed);
        let mut model = net(net_seed);
        let goal = if targeted {
            AttackGoal::Targeted(target)
        } else {
            AttackGoal::Untargeted(target)
        };
        let attacks: Vec<Box<dyn Attack>> = vec![
            Box::new(Fgsm::new(eps)),
            Box::new(Bim::new(eps, 3)),
            Box::new(Pgd::with_steps(eps, 3)),
        ];
        for attack in attacks {
            let mut rng = seeded_rng(img_seed + 1);
            let adv = attack.perturb(&mut WhiteBox(&mut model), &x, goal, &mut rng).unwrap();
            prop_assert!(
                attack.budget().holds(&x, &adv.data),
                "{} escaped its declared budget",
                attack.name()
            );
            prop_assert_eq!(adv.data.dims(), x.dims());
            prop_assert_eq!(adv.predictions.len(), 2);
            // Success flags agree with predictions under the goal.
            for (p, s) in adv.predictions.iter().zip(&adv.success) {
                prop_assert_eq!(*s, goal.is_success(*p));
            }
        }
    }

    #[test]
    fn zero_like_epsilon_means_almost_no_change(img_seed in 0u64..50) {
        let eps = Epsilon::from_255(0.25); // a quarter of a pixel level
        let x = image_batch(img_seed);
        let mut model = net(0);
        let mut rng = seeded_rng(img_seed);
        let adv = Fgsm::new(eps)
            .perturb(&mut WhiteBox(&mut model), &x, AttackGoal::Targeted(0), &mut rng)
            .unwrap();
        prop_assert!(adv.linf_distance(&x) <= 0.25 / 255.0 + 1e-7);
    }

    #[test]
    fn epsilon_ball_nesting(img_seed in 0u64..30, net_seed in 0u64..5) {
        // A smaller budget can never produce a larger max distortion for
        // the deterministic FGSM.
        let x = image_batch(img_seed);
        let mut model = net(net_seed);
        let mut rng = seeded_rng(1);
        let goal = AttackGoal::Targeted(1);
        let small = Fgsm::new(Epsilon::from_255(4.0))
            .perturb(&mut WhiteBox(&mut model), &x, goal, &mut rng)
            .unwrap();
        let large = Fgsm::new(Epsilon::from_255(8.0))
            .perturb(&mut WhiteBox(&mut model), &x, goal, &mut rng)
            .unwrap();
        prop_assert!(small.linf_distance(&x) <= large.linf_distance(&x) + 1e-6);
    }
}

proptest! {
    // The oracle/embedding fixtures are heavier, so fewer cases.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn spsa_respects_its_declared_pixel_budget(
        eps_255 in 2.0f32..24.0,
        img_seed in 0u64..40,
    ) {
        let mut classifier = net(0);
        let x = image_batch(img_seed);
        let model = vbpr_over(&mut classifier, &x, 8);
        let probes = 0..model.num_users();
        let base = baselines(&model, probes.clone());
        let target = OracleTarget::new(&classifier, &model, probes, u64::MAX, base);
        let attack = SpsaAttack::new(Epsilon::from_255(eps_255), 2, 1);
        let items: Vec<u64> = (0..x.dims()[0] as u64).collect();
        let adv = attack
            .perturb_batch(&target, &x, AttackGoal::Targeted(0), 77, &items, 1)
            .unwrap();
        prop_assert!(attack.budget().holds(&x, &adv.data), "SPSA escaped its l∞ ball");
        prop_assert_eq!(adv.success.len(), items.len());
    }

    #[test]
    fn embedding_attacks_respect_their_declared_l2_budget(
        radius in 0.05f32..1.5,
        img_seed in 0u64..40,
        sign_rule in any::<bool>(),
    ) {
        let mut classifier = net(0);
        let x = image_batch(img_seed);
        let model = vbpr_over(&mut classifier, &x, 8);
        let target = EmbedTarget::new(&model, 0..model.num_users());
        let attack = if sign_rule {
            EmbedAttack::sign(radius, 4)
        } else {
            EmbedAttack::l2(radius, 4)
        };
        // The clean payload is the model's item-feature matrix, one row per
        // attacked item.
        let n = model.num_items();
        let d = model.feature_dim();
        let mut rows = Vec::with_capacity(n * d);
        for i in 0..n {
            rows.extend_from_slice(model.item_feature(i));
        }
        let clean = Tensor::from_vec(rows, &[n, d]).unwrap();
        let items: Vec<u64> = (0..n as u64).collect();
        let adv = attack
            .perturb_batch(&target, &clean, AttackGoal::Targeted(0), 13, &items, 1)
            .unwrap();
        prop_assert!(
            attack.budget().holds(&clean, &adv.data),
            "{} escaped its l2 ball (radius {})",
            attack.name(),
            radius
        );
        prop_assert!(adv.predictions.is_empty(), "no classifier in the embedding threat model");
        prop_assert_eq!(adv.success.len(), n);
    }
}

/// Every attacker family is bitwise-deterministic under the thread count:
/// the batch content hash is one number at 1, 2, and 8 threads.
#[test]
fn every_attacker_family_is_thread_count_invariant() {
    let mut classifier = net(3);
    let x = image_batch(11);
    let model = vbpr_over(&mut classifier, &x, 8);
    let probes = 0..model.num_users();
    let base = baselines(&model, probes.clone());
    let items: Vec<u64> = (0..x.dims()[0] as u64).collect();
    let eps = Epsilon::from_255(8.0);
    let goal = AttackGoal::Targeted(1);

    let n = model.num_items();
    let d = model.feature_dim();
    let mut rows = Vec::with_capacity(n * d);
    for i in 0..n {
        rows.extend_from_slice(model.item_feature(i));
    }
    let feature_rows = Tensor::from_vec(rows, &[n, d]).unwrap();

    // (attack, payload, use_oracle_target): one entry per attacker family.
    let pixel_white: Vec<(Box<dyn Attack>, &Tensor)> = vec![
        (Box::new(Fgsm::new(eps)), &x),
        (Box::new(Bim::new(eps, 3)), &x),
        (Box::new(Pgd::with_steps(eps, 3)), &x),
    ];
    for (attack, payload) in &pixel_white {
        let target = WhiteBoxTarget::new(&classifier);
        let hashes: Vec<u64> = [1usize, 2, 8]
            .iter()
            .map(|&t| {
                rayon::with_threads(t, || {
                    attack
                        .perturb_batch(&target, payload, goal, 42, &items, 1)
                        .unwrap()
                        .content_hash()
                })
            })
            .collect();
        assert_eq!(hashes[0], hashes[1], "{} at 2 threads", attack.name());
        assert_eq!(hashes[0], hashes[2], "{} at 8 threads", attack.name());
    }

    let spsa = SpsaAttack::new(eps, 2, 1);
    let oracle_target = OracleTarget::new(&classifier, &model, probes.clone(), u64::MAX, base);
    let spsa_hashes: Vec<u64> = [1usize, 2, 8]
        .iter()
        .map(|&t| {
            rayon::with_threads(t, || {
                spsa.perturb_batch(&oracle_target, &x, goal, 42, &items, 1)
                    .unwrap()
                    .content_hash()
            })
        })
        .collect();
    assert_eq!(spsa_hashes[0], spsa_hashes[1], "SPSA at 2 threads");
    assert_eq!(spsa_hashes[0], spsa_hashes[2], "SPSA at 8 threads");

    let embed_items: Vec<u64> = (0..n as u64).collect();
    for attack in [EmbedAttack::sign(0.5, 5), EmbedAttack::l2(0.5, 5)] {
        let target = EmbedTarget::new(&model, 0..model.num_users());
        let hashes: Vec<u64> = [1usize, 2, 8]
            .iter()
            .map(|&t| {
                rayon::with_threads(t, || {
                    attack
                        .perturb_batch(&target, &feature_rows, goal, 42, &embed_items, 1)
                        .unwrap()
                        .content_hash()
                })
            })
            .collect();
        assert_eq!(hashes[0], hashes[1], "{} at 2 threads", attack.name());
        assert_eq!(hashes[0], hashes[2], "{} at 8 threads", attack.name());
    }
}

/// A black-box attacker that overspends its query budget gets a typed
/// [`AttackError::QueryBudgetExceeded`] — never a panic — and the error is
/// the same at every thread count.
#[test]
fn overspent_query_budget_is_a_typed_error_not_a_panic() {
    let mut classifier = net(5);
    let x = image_batch(21);
    let model = vbpr_over(&mut classifier, &x, 8);
    let probes = 0..model.num_users();
    let base = baselines(&model, probes.clone());
    // A zero budget starves the very first fresh oracle query (memo hits
    // are free but the first probe is always a new feature here).
    let starved = SpsaAttack::new(Epsilon::from_255(8.0), 2, 1).with_query_budget(0);
    let items: Vec<u64> = (0..x.dims()[0] as u64).collect();
    for threads in [1usize, 8] {
        let target = OracleTarget::new(&classifier, &model, probes.clone(), 0, base.clone());
        let err = rayon::with_threads(threads, || {
            starved.perturb_batch(&target, &x, AttackGoal::Targeted(0), 7, &items, 1)
        })
        .expect_err("a starved budget must fail");
        assert_eq!(
            err,
            AttackError::QueryBudgetExceeded { used: 0, budget: 0 },
            "typed budget error at {threads} threads"
        );
    }
}
