//! Item-to-item feature-matching attack (the paper's stated future work).

use rand::rngs::StdRng;
use rand::Rng;
use taamr_nn::FeatureGradient;
use taamr_tensor::Tensor;

use crate::Epsilon;

/// The result of a feature-matching attack.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureMatchResult {
    /// The perturbed images, same NCHW shape as the input.
    pub images: Tensor,
    /// Mean feature-matching loss before the attack.
    pub loss_before: f32,
    /// Mean feature-matching loss after the attack.
    pub loss_after: f32,
}

impl FeatureMatchResult {
    /// Fraction of the initial feature distance removed by the attack
    /// (0 = no progress, 1 = features match exactly).
    pub fn distance_reduction(&self) -> f32 {
        if self.loss_before <= 0.0 {
            0.0
        } else {
            1.0 - self.loss_after / self.loss_before
        }
    }
}

/// A PGD-style attack on the *feature space* instead of the class logits:
/// perturb images so their layer-`e` features match a chosen victim item's
/// features, under the same `l∞` threat model as the classifier attacks.
///
/// This realises the paper's future-work idea of "a finer-grained visual
/// attack to address a single item even within the same category": instead
/// of moving a sock toward the *running-shoe class*, it moves one sock
/// toward *one specific other product*, inheriting that item's exact
/// standing with the recommender.
///
/// # Example
///
/// ```
/// use taamr_attack::{Epsilon, FeatureMatch};
/// use taamr_nn::{ImageClassifier, TinyResNet, TinyResNetConfig};
/// use taamr_tensor::{seeded_rng, Tensor};
///
/// let mut net = TinyResNet::new(&TinyResNetConfig::tiny_for_tests(4), &mut seeded_rng(0));
/// let x = Tensor::rand_uniform(&[1, 3, 16, 16], 0.0, 1.0, &mut seeded_rng(1));
/// let victim = Tensor::rand_uniform(&[1, 3, 16, 16], 0.0, 1.0, &mut seeded_rng(2));
/// let target = net.features(&victim);
///
/// let attack = FeatureMatch::new(Epsilon::from_255(8.0), 10);
/// let result = attack.perturb(&mut net, &x, &target, &mut seeded_rng(3));
/// assert!(result.loss_after <= result.loss_before);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureMatch {
    epsilon: Epsilon,
    steps: usize,
    alpha: f32,
}

impl FeatureMatch {
    /// Creates a feature-matching attack with step size `α = 2.5·ε/steps`.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is zero.
    pub fn new(epsilon: Epsilon, steps: usize) -> Self {
        assert!(steps > 0, "step count must be positive");
        // Unlike a cross-entropy objective (where more budget always helps
        // cross the decision boundary), feature matching must *stop at* the
        // target, so use a finer step than classifier PGD.
        FeatureMatch { epsilon, steps, alpha: epsilon.as_fraction() / steps as f32 * 1.5 }
    }

    /// The `l∞` budget.
    pub fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    /// Number of gradient steps.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Perturbs `images` so their features approach `target_features`
    /// (row-major `[batch, feature_dim]`), staying within the ε-ball and the
    /// valid pixel range. Starts from a random point in the ball, like PGD.
    ///
    /// # Panics
    ///
    /// Panics if `images` is not rank-4 or the target shape is wrong.
    pub fn perturb(
        &self,
        model: &mut dyn FeatureGradient,
        images: &Tensor,
        target_features: &Tensor,
        rng: &mut StdRng,
    ) -> FeatureMatchResult {
        assert_eq!(images.rank(), 4, "FeatureMatch expects an NCHW batch");
        let eps = self.epsilon.as_fraction();
        let (loss_before, _) = model.feature_loss_input_grad(images, target_features);

        // Track the best iterate: the signed steps do not converge smoothly
        // on an MSE objective, and the clean image itself is a valid
        // fallback (so the attack never *increases* the distance).
        let mut best = images.clone();
        let mut best_loss = loss_before;
        let mut adv = images.clone();
        for v in adv.iter_mut() {
            *v = (*v + rng.gen_range(-eps..=eps)).clamp(0.0, 1.0);
        }
        taamr_obs::add(taamr_obs::Counter::AttackGradSteps, self.steps as u64);
        for _ in 0..self.steps {
            let (loss, grad) = model.feature_loss_input_grad(&adv, target_features);
            if loss < best_loss {
                best_loss = loss;
                best = adv.clone();
            }
            adv.axpy(-self.alpha, &grad.signum());
            for (a, &c) in adv.iter_mut().zip(images.iter()) {
                *a = a.clamp(c - eps, c + eps).clamp(0.0, 1.0);
            }
        }
        let (final_loss, _) = model.feature_loss_input_grad(&adv, target_features);
        if final_loss < best_loss {
            best_loss = final_loss;
            best = adv;
        }
        FeatureMatchResult { images: best, loss_before, loss_after: best_loss }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taamr_nn::{ImageClassifier, TinyResNet, TinyResNetConfig};
    use taamr_tensor::seeded_rng;

    fn setup() -> (TinyResNet, Tensor, Tensor) {
        let mut net = TinyResNet::new(&TinyResNetConfig::tiny_for_tests(4), &mut seeded_rng(0));
        let x = Tensor::rand_uniform(&[2, 3, 16, 16], 0.1, 0.9, &mut seeded_rng(1));
        let victim = Tensor::rand_uniform(&[2, 3, 16, 16], 0.1, 0.9, &mut seeded_rng(2));
        let target = net.features(&victim);
        (net, x, target)
    }

    #[test]
    fn reduces_feature_distance_within_budget() {
        let (mut net, x, target) = setup();
        let attack = FeatureMatch::new(Epsilon::from_255(16.0), 10);
        let result = attack.perturb(&mut net, &x, &target, &mut seeded_rng(3));
        assert!(result.loss_after < result.loss_before);
        assert!(result.distance_reduction() > 0.0);
        // Threat model.
        let linf = result
            .images
            .iter()
            .zip(x.iter())
            .fold(0.0f32, |m, (&a, &c)| m.max((a - c).abs()));
        assert!(linf <= Epsilon::from_255(16.0).as_fraction() + 1e-6);
        assert!(result.images.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn bigger_budget_matches_features_at_least_as_well() {
        let (mut net, x, target) = setup();
        let small = FeatureMatch::new(Epsilon::from_255(2.0), 10)
            .perturb(&mut net, &x, &target, &mut seeded_rng(4));
        let large = FeatureMatch::new(Epsilon::from_255(16.0), 10)
            .perturb(&mut net, &x, &target, &mut seeded_rng(4));
        assert!(large.loss_after <= small.loss_after + 1e-4);
    }

    #[test]
    fn matching_own_features_is_a_no_op_objective() {
        let (mut net, x, _) = setup();
        let own = net.features(&x);
        let attack = FeatureMatch::new(Epsilon::from_255(4.0), 5);
        let result = attack.perturb(&mut net, &x, &own, &mut seeded_rng(5));
        assert!(result.loss_before.abs() < 1e-10);
        assert_eq!(result.distance_reduction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "step count must be positive")]
    fn zero_steps_panics() {
        FeatureMatch::new(Epsilon::from_255(8.0), 0);
    }
}
