//! Fast Gradient Sign Method (Goodfellow et al., ICLR 2015).

use rand::rngs::StdRng;
use taamr_nn::ImageClassifier;
use taamr_tensor::Tensor;

use crate::{finish_batch, goal_sign_and_labels, AdversarialBatch, Attack, AttackGoal, Epsilon};

/// One-step signed-gradient attack (paper Eq. 5):
///
/// ```text
/// targeted:   x* = x − ε · sign(∇_x L_F(θ, x, t))
/// untargeted: x* = x + ε · sign(∇_x L_F(θ, x, y))
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fgsm {
    epsilon: Epsilon,
}

impl Fgsm {
    /// Creates an FGSM attack with the given budget.
    pub fn new(epsilon: Epsilon) -> Self {
        Fgsm { epsilon }
    }
}

impl Attack for Fgsm {
    fn name(&self) -> &'static str {
        "FGSM"
    }

    fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    fn perturb(
        &self,
        model: &mut dyn ImageClassifier,
        images: &Tensor,
        goal: AttackGoal,
        _rng: &mut StdRng,
    ) -> AdversarialBatch {
        assert_eq!(images.rank(), 4, "FGSM expects an NCHW batch");
        taamr_obs::incr(taamr_obs::Counter::AttackGradSteps);
        let (sign, labels) = goal_sign_and_labels(goal, images.dims()[0]);
        let (_, grad) = model.loss_input_grad(images, &labels);
        let step = grad.signum().scaled(sign * self.epsilon.as_fraction());
        let adv = images + &step;
        finish_batch(model, images, adv, self.epsilon, goal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taamr_nn::{TinyResNet, TinyResNetConfig};
    use taamr_tensor::seeded_rng;

    fn setup() -> (TinyResNet, Tensor) {
        let net = TinyResNet::new(&TinyResNetConfig::tiny_for_tests(4), &mut seeded_rng(0));
        let x = Tensor::rand_uniform(&[3, 3, 16, 16], 0.05, 0.95, &mut seeded_rng(1));
        (net, x)
    }

    #[test]
    fn respects_linf_budget_and_pixel_range() {
        let (mut net, x) = setup();
        for eps in Epsilon::paper_sweep() {
            let adv = Fgsm::new(eps).perturb(&mut net, &x, AttackGoal::Targeted(1), &mut seeded_rng(2));
            assert!(adv.linf_distance(&x) <= eps.as_fraction() + 1e-6);
            assert!(adv.images.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn targeted_step_raises_target_probability() {
        let (mut net, x) = setup();
        let target = 2usize;
        let p_before: f32 =
            (0..3).map(|i| net.probabilities(&x).at(&[i, target])).sum();
        let adv = Fgsm::new(Epsilon::from_255(16.0)).perturb(
            &mut net,
            &x,
            AttackGoal::Targeted(target),
            &mut seeded_rng(3),
        );
        let p_after: f32 =
            (0..3).map(|i| net.probabilities(&adv.images).at(&[i, target])).sum();
        assert!(p_after > p_before, "{p_before} -> {p_after}");
    }

    #[test]
    fn untargeted_step_lowers_source_probability() {
        let (mut net, x) = setup();
        let preds = net.predict(&x);
        let src = preds[0];
        let p_before = net.probabilities(&x).at(&[0, src]);
        let adv = Fgsm::new(Epsilon::from_255(16.0)).perturb(
            &mut net,
            &x,
            AttackGoal::Untargeted(src),
            &mut seeded_rng(4),
        );
        let p_after = net.probabilities(&adv.images).at(&[0, src]);
        assert!(p_after < p_before, "{p_before} -> {p_after}");
    }

    #[test]
    fn is_deterministic() {
        let (mut net, x) = setup();
        let a = Fgsm::new(Epsilon::from_255(8.0)).perturb(
            &mut net,
            &x,
            AttackGoal::Targeted(0),
            &mut seeded_rng(5),
        );
        let b = Fgsm::new(Epsilon::from_255(8.0)).perturb(
            &mut net,
            &x,
            AttackGoal::Targeted(0),
            &mut seeded_rng(99),
        );
        // FGSM ignores the RNG: same input, same output.
        assert_eq!(a.images, b.images);
    }

    #[test]
    fn success_flags_match_predictions() {
        let (mut net, x) = setup();
        let adv = Fgsm::new(Epsilon::from_255(8.0)).perturb(
            &mut net,
            &x,
            AttackGoal::Targeted(1),
            &mut seeded_rng(6),
        );
        for (p, s) in adv.predictions.iter().zip(&adv.success) {
            assert_eq!(*s, *p == 1);
        }
    }
}
