//! Fast Gradient Sign Method (Goodfellow et al., ICLR 2015).

use rand::rngs::StdRng;
use taamr_tensor::Tensor;

use crate::{
    finish_batch, goal_sign_and_labels, Access, AdversarialBatch, Attack, AttackError,
    AttackGoal, Budget, Epsilon, Surface, TargetWorker, ThreatModel,
};

/// One-step signed-gradient attack (paper Eq. 5):
///
/// ```text
/// targeted:   x* = x − ε · sign(∇_x L_F(θ, x, t))
/// untargeted: x* = x + ε · sign(∇_x L_F(θ, x, y))
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fgsm {
    epsilon: Epsilon,
}

impl Fgsm {
    /// Creates an FGSM attack with the given budget.
    pub fn new(epsilon: Epsilon) -> Self {
        Fgsm { epsilon }
    }

    /// The attack's `l∞` budget.
    pub fn epsilon(&self) -> Epsilon {
        self.epsilon
    }
}

impl Attack for Fgsm {
    fn name(&self) -> &'static str {
        "FGSM"
    }

    fn threat_model(&self) -> ThreatModel {
        ThreatModel { surface: Surface::Pixels, access: Access::WhiteBox }
    }

    fn budget(&self) -> Budget {
        Budget::PixelLinf(self.epsilon)
    }

    fn perturb(
        &self,
        target: &mut dyn TargetWorker,
        clean: &Tensor,
        goal: AttackGoal,
        _rng: &mut StdRng,
    ) -> Result<AdversarialBatch, AttackError> {
        assert_eq!(clean.rank(), 4, "FGSM expects an NCHW batch");
        let adv = {
            let model = target.classifier().ok_or(AttackError::UnsupportedTarget {
                attack: "FGSM",
                needs: "white-box classifier gradients",
            })?;
            taamr_obs::incr(taamr_obs::Counter::AttackGradSteps);
            let (sign, labels) = goal_sign_and_labels(goal, clean.dims()[0]);
            let (_, grad) = model.loss_input_grad(clean, &labels);
            let step = grad.signum().scaled(sign * self.epsilon.as_fraction());
            clean + &step
        };
        Ok(finish_batch(target, clean, adv, self.epsilon, goal))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WhiteBox;
    use taamr_nn::{ImageClassifier, TinyResNet, TinyResNetConfig};
    use taamr_tensor::seeded_rng;

    fn setup() -> (TinyResNet, Tensor) {
        let net = TinyResNet::new(&TinyResNetConfig::tiny_for_tests(4), &mut seeded_rng(0));
        let x = Tensor::rand_uniform(&[3, 3, 16, 16], 0.05, 0.95, &mut seeded_rng(1));
        (net, x)
    }

    #[test]
    fn respects_linf_budget_and_pixel_range() {
        let (mut net, x) = setup();
        for eps in Epsilon::paper_sweep() {
            let adv = Fgsm::new(eps)
                .perturb(&mut WhiteBox(&mut net), &x, AttackGoal::Targeted(1), &mut seeded_rng(2))
                .unwrap();
            assert!(adv.linf_distance(&x) <= eps.as_fraction() + 1e-6);
            assert!(adv.data.iter().all(|&v| (0.0..=1.0).contains(&v)));
            assert!(Fgsm::new(eps).budget().holds(&x, &adv.data));
        }
    }

    #[test]
    fn declares_white_box_pixel_threat_model() {
        let a = Fgsm::new(Epsilon::from_255(8.0));
        assert_eq!(
            a.threat_model(),
            ThreatModel { surface: Surface::Pixels, access: Access::WhiteBox }
        );
        assert_eq!(a.budget(), Budget::PixelLinf(Epsilon::from_255(8.0)));
    }

    #[test]
    fn gradient_attack_on_gradientless_target_is_a_typed_error() {
        struct NoAccess;
        impl TargetWorker for NoAccess {
            fn bind(&mut self, _item: u64) {}
        }
        let x = Tensor::zeros(&[1, 3, 16, 16]);
        let err = Fgsm::new(Epsilon::from_255(8.0))
            .perturb(&mut NoAccess, &x, AttackGoal::Targeted(0), &mut seeded_rng(2))
            .expect_err("no gradients available");
        assert!(matches!(err, AttackError::UnsupportedTarget { attack: "FGSM", .. }));
    }

    #[test]
    fn targeted_step_raises_target_probability() {
        let (mut net, x) = setup();
        let target = 2usize;
        let p_before: f32 =
            (0..3).map(|i| net.probabilities(&x).at(&[i, target])).sum();
        let adv = Fgsm::new(Epsilon::from_255(16.0))
            .perturb(
                &mut WhiteBox(&mut net),
                &x,
                AttackGoal::Targeted(target),
                &mut seeded_rng(3),
            )
            .unwrap();
        let p_after: f32 =
            (0..3).map(|i| net.probabilities(&adv.data).at(&[i, target])).sum();
        assert!(p_after > p_before, "{p_before} -> {p_after}");
    }

    #[test]
    fn untargeted_step_lowers_source_probability() {
        let (mut net, x) = setup();
        let preds = net.predict(&x);
        let src = preds[0];
        let p_before = net.probabilities(&x).at(&[0, src]);
        let adv = Fgsm::new(Epsilon::from_255(16.0))
            .perturb(
                &mut WhiteBox(&mut net),
                &x,
                AttackGoal::Untargeted(src),
                &mut seeded_rng(4),
            )
            .unwrap();
        let p_after = net.probabilities(&adv.data).at(&[0, src]);
        assert!(p_after < p_before, "{p_before} -> {p_after}");
    }

    #[test]
    fn is_deterministic() {
        let (mut net, x) = setup();
        let a = Fgsm::new(Epsilon::from_255(8.0))
            .perturb(&mut WhiteBox(&mut net), &x, AttackGoal::Targeted(0), &mut seeded_rng(5))
            .unwrap();
        let b = Fgsm::new(Epsilon::from_255(8.0))
            .perturb(&mut WhiteBox(&mut net), &x, AttackGoal::Targeted(0), &mut seeded_rng(99))
            .unwrap();
        // FGSM ignores the RNG: same input, same output.
        assert_eq!(a.data, b.data);
    }

    #[test]
    fn success_flags_match_predictions() {
        let (mut net, x) = setup();
        let adv = Fgsm::new(Epsilon::from_255(8.0))
            .perturb(&mut WhiteBox(&mut net), &x, AttackGoal::Targeted(1), &mut seeded_rng(6))
            .unwrap();
        for (p, s) in adv.predictions.iter().zip(&adv.success) {
            assert_eq!(*s, *p == 1);
        }
    }
}
