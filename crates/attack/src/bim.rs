//! Basic Iterative Method (Kurakin et al., ICLR 2017 workshop).

use rand::rngs::StdRng;
use taamr_nn::ImageClassifier;
use taamr_tensor::Tensor;

use crate::{
    finish_batch, goal_sign_and_labels, Access, AdversarialBatch, Attack, AttackError,
    AttackGoal, Budget, Epsilon, Surface, TargetWorker, ThreatModel,
};

/// Iterated FGSM: `steps` signed-gradient steps of size `alpha`, projecting
/// back into the ε-ball (and `[0, 1]`) after every step. Unlike [`crate::Pgd`],
/// BIM starts from the clean image (no random initialisation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bim {
    epsilon: Epsilon,
    steps: usize,
    alpha: f32,
}

impl Bim {
    /// Creates a BIM attack with the conventional step size
    /// `α = 2.5 · ε / steps` (so the ball boundary is reachable).
    ///
    /// # Panics
    ///
    /// Panics if `steps` is zero.
    pub fn new(epsilon: Epsilon, steps: usize) -> Self {
        assert!(steps > 0, "step count must be positive");
        Bim { epsilon, steps, alpha: 2.5 * epsilon.as_fraction() / steps as f32 }
    }

    /// Overrides the per-step size (as a fraction of the pixel range).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not positive.
    #[must_use]
    pub fn with_alpha(mut self, alpha: f32) -> Self {
        assert!(alpha > 0.0, "alpha must be positive");
        self.alpha = alpha;
        self
    }

    /// The attack's `l∞` budget.
    pub fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    /// Number of gradient steps.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Runs the iterative loop from `start` (BIM: the clean image; PGD: a
    /// random point in the ball).
    pub(crate) fn iterate(
        &self,
        model: &mut dyn ImageClassifier,
        clean: &Tensor,
        start: Tensor,
        goal: AttackGoal,
    ) -> Tensor {
        let eps = self.epsilon.as_fraction();
        let (sign, labels) = goal_sign_and_labels(goal, clean.dims()[0]);
        let mut adv = start;
        taamr_obs::add(taamr_obs::Counter::AttackGradSteps, self.steps as u64);
        for _ in 0..self.steps {
            let (_, grad) = model.loss_input_grad(&adv, &labels);
            adv.axpy(sign * self.alpha, &grad.signum());
            // Project to the ε-ball ∩ [0, 1] after every step.
            for (a, &c) in adv.iter_mut().zip(clean.iter()) {
                *a = a.clamp(c - eps, c + eps).clamp(0.0, 1.0);
            }
        }
        adv
    }
}

impl Attack for Bim {
    fn name(&self) -> &'static str {
        "BIM"
    }

    fn threat_model(&self) -> ThreatModel {
        ThreatModel { surface: Surface::Pixels, access: Access::WhiteBox }
    }

    fn budget(&self) -> Budget {
        Budget::PixelLinf(self.epsilon)
    }

    fn perturb(
        &self,
        target: &mut dyn TargetWorker,
        clean: &Tensor,
        goal: AttackGoal,
        _rng: &mut StdRng,
    ) -> Result<AdversarialBatch, AttackError> {
        assert_eq!(clean.rank(), 4, "BIM expects an NCHW batch");
        let adv = {
            let model = target.classifier().ok_or(AttackError::UnsupportedTarget {
                attack: "BIM",
                needs: "white-box classifier gradients",
            })?;
            self.iterate(model, clean, clean.clone(), goal)
        };
        Ok(finish_batch(target, clean, adv, self.epsilon, goal))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fgsm, WhiteBox};
    use taamr_nn::{TinyResNet, TinyResNetConfig};
    use taamr_tensor::seeded_rng;

    fn setup() -> (TinyResNet, Tensor) {
        let net = TinyResNet::new(&TinyResNetConfig::tiny_for_tests(4), &mut seeded_rng(0));
        let x = Tensor::rand_uniform(&[3, 3, 16, 16], 0.05, 0.95, &mut seeded_rng(1));
        (net, x)
    }

    #[test]
    fn respects_budget() {
        let (mut net, x) = setup();
        let eps = Epsilon::from_255(8.0);
        let adv = Bim::new(eps, 5)
            .perturb(&mut WhiteBox(&mut net), &x, AttackGoal::Targeted(1), &mut seeded_rng(2))
            .unwrap();
        assert!(adv.linf_distance(&x) <= eps.as_fraction() + 1e-6);
        assert!(adv.data.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn more_iterations_do_at_least_as_well_as_fgsm() {
        let (mut net, x) = setup();
        let eps = Epsilon::from_255(8.0);
        let target = 3usize;
        let goal = AttackGoal::Targeted(target);
        let fgsm =
            Fgsm::new(eps).perturb(&mut WhiteBox(&mut net), &x, goal, &mut seeded_rng(3)).unwrap();
        let bim = Bim::new(eps, 10)
            .perturb(&mut WhiteBox(&mut net), &x, goal, &mut seeded_rng(3))
            .unwrap();
        // Compare mean target probability: the iterative attack should not
        // be weaker.
        let mean_p = |net: &mut TinyResNet, imgs: &Tensor| -> f32 {
            let p = net.probabilities(imgs);
            (0..3).map(|i| p.at(&[i, target])).sum::<f32>() / 3.0
        };
        let pf = mean_p(&mut net, &fgsm.data);
        let pb = mean_p(&mut net, &bim.data);
        assert!(pb >= pf - 1e-3, "BIM {pb} vs FGSM {pf}");
    }

    #[test]
    fn single_step_bim_with_eps_alpha_equals_fgsm() {
        let (mut net, x) = setup();
        let eps = Epsilon::from_255(8.0);
        let goal = AttackGoal::Targeted(2);
        let fgsm =
            Fgsm::new(eps).perturb(&mut WhiteBox(&mut net), &x, goal, &mut seeded_rng(4)).unwrap();
        let bim = Bim::new(eps, 1)
            .with_alpha(eps.as_fraction())
            .perturb(&mut WhiteBox(&mut net), &x, goal, &mut seeded_rng(4))
            .unwrap();
        for (a, b) in fgsm.data.iter().zip(bim.data.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "step count must be positive")]
    fn zero_steps_panics() {
        Bim::new(Epsilon::from_255(8.0), 0);
    }
}
