//! Projected Gradient Descent (Madry et al., ICLR 2018).

use rand::rngs::StdRng;
use rand::Rng;
use taamr_tensor::Tensor;

use crate::bim::Bim;
use crate::{
    finish_batch, Access, AdversarialBatch, Attack, AttackError, AttackGoal, Budget, Epsilon,
    Surface, TargetWorker, ThreatModel,
};

/// PGD: the paper's stronger attack. Identical to [`Bim`] except the
/// iteration starts from a uniformly random point inside the ε-ball —
/// "PGD differs from BIM in the fact that PGD starts from a uniform random
/// noise as the initial perturbation". The paper runs 10 iterations; that is
/// the [`Pgd::new`] default via [`Pgd::PAPER_STEPS`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pgd {
    inner: Bim,
}

impl Pgd {
    /// The paper's iteration count.
    pub const PAPER_STEPS: usize = 10;

    /// Creates a PGD attack with the paper's 10 iterations and step size
    /// `α = 2.5 · ε / steps`.
    pub fn new(epsilon: Epsilon) -> Self {
        Pgd { inner: Bim::new(epsilon, Self::PAPER_STEPS) }
    }

    /// Creates a PGD attack with a custom iteration count.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is zero.
    pub fn with_steps(epsilon: Epsilon, steps: usize) -> Self {
        Pgd { inner: Bim::new(epsilon, steps) }
    }

    /// Overrides the per-step size (fraction of the pixel range).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not positive.
    #[must_use]
    pub fn with_alpha(mut self, alpha: f32) -> Self {
        self.inner = self.inner.with_alpha(alpha);
        self
    }

    /// The attack's `l∞` budget.
    pub fn epsilon(&self) -> Epsilon {
        self.inner.epsilon()
    }

    /// Number of gradient steps.
    pub fn steps(&self) -> usize {
        self.inner.steps()
    }
}

impl Attack for Pgd {
    fn name(&self) -> &'static str {
        "PGD"
    }

    fn threat_model(&self) -> ThreatModel {
        ThreatModel { surface: Surface::Pixels, access: Access::WhiteBox }
    }

    fn budget(&self) -> Budget {
        Budget::PixelLinf(self.epsilon())
    }

    fn perturb(
        &self,
        target: &mut dyn TargetWorker,
        clean: &Tensor,
        goal: AttackGoal,
        rng: &mut StdRng,
    ) -> Result<AdversarialBatch, AttackError> {
        assert_eq!(clean.rank(), 4, "PGD expects an NCHW batch");
        let eps = self.epsilon().as_fraction();
        let adv = {
            let model = target.classifier().ok_or(AttackError::UnsupportedTarget {
                attack: "PGD",
                needs: "white-box classifier gradients",
            })?;
            // Random start: uniform noise inside the l∞ ball, clipped valid.
            let mut start = clean.clone();
            for v in start.iter_mut() {
                *v = (*v + rng.gen_range(-eps..=eps)).clamp(0.0, 1.0);
            }
            self.inner.iterate(model, clean, start, goal)
        };
        Ok(finish_batch(target, clean, adv, self.epsilon(), goal))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fgsm, WhiteBox};
    use taamr_nn::{ImageClassifier, TinyResNet, TinyResNetConfig};
    use taamr_tensor::seeded_rng;

    fn setup() -> (TinyResNet, Tensor) {
        let net = TinyResNet::new(&TinyResNetConfig::tiny_for_tests(4), &mut seeded_rng(0));
        let x = Tensor::rand_uniform(&[4, 3, 16, 16], 0.05, 0.95, &mut seeded_rng(1));
        (net, x)
    }

    #[test]
    fn respects_budget_despite_random_start() {
        let (mut net, x) = setup();
        for eps in Epsilon::paper_sweep() {
            let adv = Pgd::new(eps)
                .perturb(&mut WhiteBox(&mut net), &x, AttackGoal::Targeted(0), &mut seeded_rng(2))
                .unwrap();
            assert!(adv.linf_distance(&x) <= eps.as_fraction() + 1e-6);
            assert!(adv.data.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn pgd_beats_fgsm_on_target_probability() {
        // The paper's central Table III observation: PGD ≫ FGSM.
        let (mut net, x) = setup();
        let eps = Epsilon::from_255(8.0);
        let target = 1usize;
        let goal = AttackGoal::Targeted(target);
        let fgsm =
            Fgsm::new(eps).perturb(&mut WhiteBox(&mut net), &x, goal, &mut seeded_rng(3)).unwrap();
        let pgd =
            Pgd::new(eps).perturb(&mut WhiteBox(&mut net), &x, goal, &mut seeded_rng(3)).unwrap();
        let mean_p = |net: &mut TinyResNet, imgs: &Tensor| -> f32 {
            let p = net.probabilities(imgs);
            (0..4).map(|i| p.at(&[i, target])).sum::<f32>() / 4.0
        };
        let pf = mean_p(&mut net, &fgsm.data);
        let pp = mean_p(&mut net, &pgd.data);
        assert!(pp > pf, "PGD {pp} should beat FGSM {pf}");
    }

    #[test]
    fn default_matches_paper_iterations() {
        assert_eq!(Pgd::new(Epsilon::from_255(4.0)).steps(), 10);
        assert_eq!(Pgd::PAPER_STEPS, 10);
    }

    #[test]
    fn random_start_differs_across_seeds_but_is_reproducible() {
        let (mut net, x) = setup();
        let eps = Epsilon::from_255(8.0);
        let goal = AttackGoal::Targeted(2);
        let a =
            Pgd::new(eps).perturb(&mut WhiteBox(&mut net), &x, goal, &mut seeded_rng(10)).unwrap();
        let b =
            Pgd::new(eps).perturb(&mut WhiteBox(&mut net), &x, goal, &mut seeded_rng(10)).unwrap();
        let c =
            Pgd::new(eps).perturb(&mut WhiteBox(&mut net), &x, goal, &mut seeded_rng(11)).unwrap();
        assert_eq!(a.data, b.data);
        assert_ne!(a.data, c.data);
    }

    #[test]
    fn success_rate_is_consistent() {
        let (mut net, x) = setup();
        let adv = Pgd::new(Epsilon::from_255(16.0))
            .perturb(&mut WhiteBox(&mut net), &x, AttackGoal::Targeted(3), &mut seeded_rng(12))
            .unwrap();
        let manual =
            adv.success.iter().filter(|&&s| s).count() as f64 / adv.success.len() as f64;
        assert_eq!(adv.success_rate(), manual);
    }
}
