//! SPSA-style black-box score-oracle attack.
//!
//! The adversary sees no weights and no gradients — only the answer to
//! "what would this item score if its image were X?", paid per query. The
//! attack estimates the score gradient by simultaneous-perturbation
//! stochastic approximation (Spall 1992; adversarial use as in Uesato et
//! al., ICML 2018): each iterate draws Rademacher directions `v`, queries
//! the oracle at `x ± σv`, and combines the two-sided differences into a
//! gradient surrogate, then takes a signed ascent step projected into the
//! `l∞` ε-ball.

use rand::rngs::StdRng;
use rand::Rng;
use taamr_tensor::Tensor;

use crate::{
    Access, AdversarialBatch, Attack, AttackError, AttackGoal, Budget, Epsilon, Surface,
    TargetWorker, ThreatModel,
};

/// Query-budgeted black-box pixel attack via SPSA gradient estimation.
///
/// Success is judged on the attacker's own objective — did the oracle score
/// of the best candidate exceed the clean score? — not on classifier labels
/// the black-box adversary cannot see. The final best candidate is
/// re-queried once for validation; that re-query is a memo hit and costs no
/// budget, so a run needs at most
/// [`SpsaAttack::required_queries`]`(steps, samples)` fresh queries — fewer
/// when distinct probe images collapse to bit-identical features and hit
/// the oracle's memo.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpsaAttack {
    epsilon: Epsilon,
    steps: usize,
    samples: usize,
    query_budget: u64,
}

impl SpsaAttack {
    /// Creates an SPSA attack with `steps` iterates of `samples` two-sided
    /// probes each, and a query budget of exactly what the run needs.
    ///
    /// # Panics
    ///
    /// Panics if `steps` or `samples` is zero.
    pub fn new(epsilon: Epsilon, steps: usize, samples: usize) -> Self {
        assert!(steps > 0, "step count must be positive");
        assert!(samples > 0, "sample count must be positive");
        SpsaAttack { epsilon, steps, samples, query_budget: Self::required_queries(steps, samples) }
    }

    /// Overrides the per-item query budget (e.g. to starve the attack and
    /// test the typed budget error).
    #[must_use]
    pub fn with_query_budget(mut self, query_budget: u64) -> Self {
        self.query_budget = query_budget;
        self
    }

    /// Fresh oracle queries one run spends at most: per step, `2 · samples`
    /// probe queries plus one iterate query. Memo hits are free, so the
    /// actual spend can be lower.
    pub fn required_queries(steps: usize, samples: usize) -> u64 {
        steps as u64 * (2 * samples as u64 + 1)
    }

    /// The attack's `l∞` budget.
    pub fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    /// Number of SPSA iterates.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Rademacher probe pairs per iterate.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// The per-item oracle query budget.
    pub fn query_budget(&self) -> u64 {
        self.query_budget
    }
}

impl Attack for SpsaAttack {
    fn name(&self) -> &'static str {
        "SPSA"
    }

    fn threat_model(&self) -> ThreatModel {
        ThreatModel {
            surface: Surface::Pixels,
            access: Access::BlackBox { query_budget: self.query_budget },
        }
    }

    fn budget(&self) -> Budget {
        Budget::PixelLinf(self.epsilon)
    }

    fn perturb(
        &self,
        target: &mut dyn TargetWorker,
        clean: &Tensor,
        goal: AttackGoal,
        rng: &mut StdRng,
    ) -> Result<AdversarialBatch, AttackError> {
        assert_eq!(clean.rank(), 4, "SPSA expects an NCHW batch");
        assert_eq!(clean.dims()[0], 1, "black-box SPSA perturbs one item per call");
        // The goal class belongs to the white-box classifier objective; the
        // black-box objective is always score promotion of the bound item.
        let _ = goal;
        let eps = self.epsilon.as_fraction();
        let (best, success) = {
            let oracle = target.oracle().ok_or(AttackError::UnsupportedTarget {
                attack: "SPSA",
                needs: "a black-box score oracle",
            })?;
            let clean_score = oracle.clean_score();
            let sigma = (eps * 0.5).max(1e-4);
            let alpha = eps / self.steps as f32;
            let len = clean.len();
            let mut adv = clean.clone();
            let mut best = clean.clone();
            let mut best_score = clean_score;
            for _ in 0..self.steps {
                let mut ghat = vec![0.0f32; len];
                for _ in 0..self.samples {
                    let dir: Vec<f32> =
                        (0..len).map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 }).collect();
                    let mut plus = adv.clone();
                    let mut minus = adv.clone();
                    for ((p, m), &d) in plus.iter_mut().zip(minus.iter_mut()).zip(&dir) {
                        *p = (*p + sigma * d).clamp(0.0, 1.0);
                        *m = (*m - sigma * d).clamp(0.0, 1.0);
                    }
                    let s_plus = oracle.query(&plus)?;
                    let s_minus = oracle.query(&minus)?;
                    let coeff = (s_plus - s_minus) / (2.0 * sigma);
                    for (g, &d) in ghat.iter_mut().zip(&dir) {
                        *g += coeff * d;
                    }
                }
                // Signed ascent, projected into the ε-ball ∩ [0, 1].
                for ((a, &c), &g) in adv.iter_mut().zip(clean.iter()).zip(&ghat) {
                    *a = (*a + alpha * g.signum()).clamp(c - eps, c + eps).clamp(0.0, 1.0);
                }
                let score = oracle.query(&adv)?;
                if score > best_score {
                    best_score = score;
                    best = adv.clone();
                }
            }
            // Validation re-query of the winner: a memo hit (the winner was
            // either queried above or is the clean image), so it is free.
            let final_score = oracle.query(&best)?;
            (best, final_score > clean_score)
        };
        let predictions = target.measure(&best).unwrap_or_default();
        Ok(AdversarialBatch { data: best, predictions, success: vec![success] })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WhiteBox;
    use taamr_tensor::seeded_rng;

    #[test]
    fn declares_black_box_pixel_threat_model() {
        let a = SpsaAttack::new(Epsilon::from_255(8.0), 2, 2);
        assert_eq!(
            a.threat_model(),
            ThreatModel {
                surface: Surface::Pixels,
                access: Access::BlackBox { query_budget: 10 }
            }
        );
        assert_eq!(a.budget(), Budget::PixelLinf(Epsilon::from_255(8.0)));
        assert_eq!(a.query_budget(), SpsaAttack::required_queries(2, 2));
    }

    #[test]
    fn required_queries_counts_probes_and_iterates() {
        assert_eq!(SpsaAttack::required_queries(2, 2), 10);
        assert_eq!(SpsaAttack::required_queries(1, 1), 3);
        assert_eq!(SpsaAttack::required_queries(3, 4), 27);
    }

    #[test]
    fn oracle_less_target_is_a_typed_error() {
        // A white-box worker grants gradients but no score oracle; SPSA
        // must refuse with UnsupportedTarget, not panic.
        let mut net = taamr_nn::TinyResNet::new(
            &taamr_nn::TinyResNetConfig::tiny_for_tests(4),
            &mut seeded_rng(0),
        );
        let x = Tensor::rand_uniform(&[1, 3, 16, 16], 0.1, 0.9, &mut seeded_rng(1));
        let err = SpsaAttack::new(Epsilon::from_255(8.0), 1, 1)
            .perturb(&mut WhiteBox(&mut net), &x, AttackGoal::Targeted(0), &mut seeded_rng(2))
            .expect_err("no oracle on a white-box worker");
        assert!(matches!(err, AttackError::UnsupportedTarget { attack: "SPSA", .. }));
    }

    #[test]
    #[should_panic(expected = "step count must be positive")]
    fn zero_steps_panics() {
        SpsaAttack::new(Epsilon::from_255(8.0), 0, 1);
    }
}
