//! Adversarial attacks against the recommendation pipeline, polymorphic
//! over threat models.
//!
//! Every attacker implements the one [`Attack`] trait and declares its
//! [`ThreatModel`] — which [`Surface`] it perturbs and what [`Access`] it
//! assumes — and its [`Budget`] (the norm ball it promises to stay in):
//!
//! | attack | surface | access | budget |
//! |---|---|---|---|
//! | [`Fgsm`] | pixels | white-box | `l∞` ε (paper Eq. 5) |
//! | [`Bim`] | pixels | white-box | `l∞` ε |
//! | [`Pgd`] | pixels | white-box | `l∞` ε (the paper's stronger attack) |
//! | [`SpsaAttack`] | pixels | black-box, query-budgeted | `l∞` ε |
//! | [`EmbedAttack`] | embeddings | white-box | `l2` radius |
//!
//! Attacks never talk to a concrete model type; they ask their
//! [`TargetWorker`] for the capability they need — white-box classifier
//! gradients, a budgeted score oracle, or direct embedding access — and fail
//! with a typed [`AttackError::UnsupportedTarget`] when pointed at a target
//! that does not grant it. Batch execution, per-item seed derivation and the
//! parallel fan-out live on the trait itself ([`Attack::perturb_batch`]), so
//! every attacker inherits the same bit-reproducible parallel driver.
//!
//! # Example
//!
//! ```
//! use taamr_attack::{Attack, AttackGoal, Epsilon, Fgsm, WhiteBox};
//! use taamr_nn::{TinyResNet, TinyResNetConfig};
//! use taamr_tensor::{seeded_rng, Tensor};
//!
//! let mut net = TinyResNet::new(&TinyResNetConfig::tiny_for_tests(4), &mut seeded_rng(0));
//! let x = Tensor::rand_uniform(&[2, 3, 16, 16], 0.0, 1.0, &mut seeded_rng(1));
//! let attack = Fgsm::new(Epsilon::from_255(8.0));
//! let adv = attack
//!     .perturb(&mut WhiteBox(&mut net), &x, AttackGoal::Targeted(2), &mut seeded_rng(2))
//!     .unwrap();
//! assert!(adv.linf_distance(&x) <= Epsilon::from_255(8.0).as_fraction() + 1e-6);
//! ```

#![deny(missing_docs)]

mod batch;
mod bim;
pub mod defense;
mod embed;
mod feature_match;
mod fgsm;
mod pgd;
mod spsa;
mod target;
mod types;

pub use bim::Bim;
pub use defense::{adversarial_finetune, AdversarialTrainingConfig};
pub use embed::EmbedAttack;
pub use feature_match::{FeatureMatch, FeatureMatchResult};
pub use fgsm::Fgsm;
pub use pgd::Pgd;
pub use spsa::SpsaAttack;
pub use target::{
    AttackTarget, EmbedTarget, EmbeddingAccess, OracleTarget, ScoreOracle, TargetWorker,
    WhiteBox, WhiteBoxTarget,
};
pub use types::{
    Access, AdversarialBatch, AttackError, AttackGoal, Budget, Epsilon, Surface, ThreatModel,
};

use rand::rngs::StdRng;
use rand::SeedableRng;
use taamr_tensor::Tensor;

/// An adversarial attack over items of the recommendation catalog.
///
/// Implementations perturb one payload row per item (NCHW images for pixel
/// surfaces, feature rows for embedding surfaces) toward the attacker's
/// goal, subject to the declared [`Budget`], using only the access their
/// [`ThreatModel`] grants.
///
/// Attacks are `Sync` (plain configuration structs), so one instance can be
/// shared by every worker thread of [`Attack::perturb_batch`].
pub trait Attack: Sync {
    /// Short attack name for reports ("FGSM", "PGD", "SPSA", …).
    fn name(&self) -> &'static str;

    /// The surface × access threat model this attack operates under.
    fn threat_model(&self) -> ThreatModel;

    /// The norm ball the attack promises its perturbations stay inside.
    fn budget(&self) -> Budget;

    /// Produces adversarial versions of the `clean` payload against the
    /// bound target.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::UnsupportedTarget`] when `target` lacks the
    /// access this attack's threat model requires, and
    /// [`AttackError::QueryBudgetExceeded`] when a black-box attack
    /// overspends its oracle budget.
    ///
    /// # Panics
    ///
    /// Panics on shape misuse (wrong rank, or a multi-row batch passed to a
    /// per-item attack) or goal classes out of range for the model.
    fn perturb(
        &self,
        target: &mut dyn TargetWorker,
        clean: &Tensor,
        goal: AttackGoal,
        rng: &mut StdRng,
    ) -> Result<AdversarialBatch, AttackError>;

    /// [`Attack::perturb`] with a fresh RNG seeded from `seed`.
    ///
    /// This is the unit of reproducibility for parallel attacks: a result
    /// depends only on `(target, clean, goal, seed)`, never on which thread
    /// ran it or what was attacked before.
    ///
    /// # Errors
    ///
    /// Exactly the errors of [`Attack::perturb`].
    fn perturb_seeded(
        &self,
        target: &mut dyn TargetWorker,
        clean: &Tensor,
        goal: AttackGoal,
        seed: u64,
    ) -> Result<AdversarialBatch, AttackError> {
        let mut rng = StdRng::seed_from_u64(seed);
        self.perturb(target, clean, goal, &mut rng)
    }

    /// Derives the RNG seed for one attacked item from the experiment's
    /// master seed: `master ^ (item_id << 20)`.
    ///
    /// The shift keeps small item ids out of the master seed's low bits;
    /// `StdRng`'s SplitMix64 seeding then disperses the XOR-combined word,
    /// so neighbouring items draw unrelated streams.
    fn item_seed(&self, master_seed: u64, item_id: u64) -> u64 {
        master_seed ^ item_id.wrapping_shl(20)
    }

    /// Attacks every leading-dimension row of `batch` independently, in
    /// parallel: row `i` belongs to item `items[i]`, is bound on a worker
    /// from `target`, and is perturbed as a single-row batch with the seed
    /// [`Attack::item_seed`]`(master_seed, items[i])`. `chunk_size` controls
    /// how many items a worker handles per [`AttackTarget::worker`] call; it
    /// does not affect the output.
    ///
    /// # Errors
    ///
    /// The first (in item order) per-item error, if any item fails.
    ///
    /// # Panics
    ///
    /// Panics if `batch` has rank below 2, `items` does not name one item
    /// per row, or `chunk_size` is zero.
    fn perturb_batch(
        &self,
        target: &dyn AttackTarget,
        batch: &Tensor,
        goal: AttackGoal,
        master_seed: u64,
        items: &[u64],
        chunk_size: usize,
    ) -> Result<AdversarialBatch, AttackError> {
        batch::drive(self, target, batch, goal, master_seed, items, chunk_size)
    }
}

/// Shared pixel-attack post-processing: clamp to the ε-ball around `clean`
/// and to the valid pixel range, then measure predictions and success.
pub(crate) fn finish_batch(
    target: &mut dyn TargetWorker,
    clean: &Tensor,
    mut adv: Tensor,
    epsilon: Epsilon,
    goal: AttackGoal,
) -> AdversarialBatch {
    let eps = epsilon.as_fraction();
    // Project into the l∞ ball ∩ [0, 1].
    for (a, &c) in adv.iter_mut().zip(clean.iter()) {
        *a = a.clamp(c - eps, c + eps).clamp(0.0, 1.0);
    }
    let predictions = target.measure(&adv).unwrap_or_default();
    let success = predictions.iter().map(|&p| goal.is_success(p)).collect();
    AdversarialBatch { data: adv, predictions, success }
}

/// The gradient step direction for a goal: targeted attacks *descend* the
/// loss toward the target (−1), untargeted attacks *ascend* it (+1).
pub(crate) fn goal_sign_and_labels(goal: AttackGoal, batch: usize) -> (f32, Vec<usize>) {
    match goal {
        AttackGoal::Targeted(t) => (-1.0, vec![t; batch]),
        AttackGoal::Untargeted(src) => (1.0, vec![src; batch]),
    }
}
