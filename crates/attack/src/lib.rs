//! Adversarial image attacks: FGSM, BIM and PGD, targeted and untargeted.
//!
//! These are the attacks the paper runs through CleverHans, re-implemented
//! against the [`taamr_nn::ImageClassifier`] interface:
//!
//! * [`Fgsm`] — the Fast Gradient Sign Method (paper Eq. 5): one signed
//!   gradient step of size ε.
//! * [`Bim`] — the Basic Iterative Method: repeated FGSM steps of size α,
//!   clipped to the ε-ball after every step (included as the ablation point
//!   between FGSM and PGD).
//! * [`Pgd`] — Projected Gradient Descent: BIM started from a uniformly
//!   random point inside the ε-ball (the paper's stronger attack; 10
//!   iterations by default, as in the paper).
//!
//! All attacks enforce the paper's threat model: `l∞`-bounded perturbations
//! (`‖x* − x‖∞ ≤ ε`) of images that stay inside the valid pixel range
//! `[0, 1]`. The perturbation budget ε is specified on the paper's 0–255
//! scale and normalised internally ([`Epsilon`]).
//!
//! # Example
//!
//! ```
//! use taamr_attack::{Attack, AttackGoal, Epsilon, Fgsm};
//! use taamr_nn::{TinyResNet, TinyResNetConfig};
//! use taamr_tensor::{seeded_rng, Tensor};
//!
//! let mut net = TinyResNet::new(&TinyResNetConfig::tiny_for_tests(4), &mut seeded_rng(0));
//! let x = Tensor::rand_uniform(&[2, 3, 16, 16], 0.0, 1.0, &mut seeded_rng(1));
//! let attack = Fgsm::new(Epsilon::from_255(8.0));
//! let adv = attack.perturb(&mut net, &x, AttackGoal::Targeted(2), &mut seeded_rng(2));
//! assert!(adv.linf_distance(&x) <= Epsilon::from_255(8.0).as_fraction() + 1e-6);
//! ```

#![deny(missing_docs)]

pub mod batch;
mod bim;
pub mod defense;
mod feature_match;
mod fgsm;
mod pgd;
mod types;

pub use batch::{item_seed, par_attack_batch};
pub use bim::Bim;
pub use defense::{adversarial_finetune, AdversarialTrainingConfig};
pub use feature_match::{FeatureMatch, FeatureMatchResult};
pub use fgsm::Fgsm;
pub use pgd::Pgd;
pub use types::{AdversarialBatch, AttackGoal, Epsilon};

use rand::rngs::StdRng;
use rand::SeedableRng;
use taamr_nn::ImageClassifier;
use taamr_tensor::Tensor;

/// An adversarial image attack over a batch of images.
///
/// Implementations perturb every image in the NCHW batch toward (targeted)
/// or away from (untargeted) the goal class, subject to the `l∞` budget.
///
/// Attacks are `Sync` (plain configuration structs), so one instance can be
/// shared by every worker thread of [`par_attack_batch`].
pub trait Attack: Sync {
    /// Short attack name for reports ("FGSM", "PGD", …).
    fn name(&self) -> &'static str;

    /// The attack's `l∞` budget.
    fn epsilon(&self) -> Epsilon;

    /// Produces adversarial versions of `images` (NCHW, pixels in `[0, 1]`).
    ///
    /// # Panics
    ///
    /// Panics if `images` is not rank-4 or the goal class is out of range
    /// for the model.
    fn perturb(
        &self,
        model: &mut dyn ImageClassifier,
        images: &Tensor,
        goal: AttackGoal,
        rng: &mut StdRng,
    ) -> AdversarialBatch;

    /// [`Attack::perturb`] with a fresh RNG seeded from `seed`.
    ///
    /// This is the unit of reproducibility for parallel attacks: a result
    /// depends only on `(model, images, goal, seed)`, never on which thread
    /// ran it or what was attacked before.
    fn perturb_seeded(
        &self,
        model: &mut dyn ImageClassifier,
        images: &Tensor,
        goal: AttackGoal,
        seed: u64,
    ) -> AdversarialBatch {
        let mut rng = StdRng::seed_from_u64(seed);
        self.perturb(model, images, goal, &mut rng)
    }
}

/// Shared post-processing: clamp to the ε-ball around `clean` and to the
/// valid pixel range, then evaluate predictions and success.
pub(crate) fn finish_batch(
    model: &mut dyn ImageClassifier,
    clean: &Tensor,
    mut adv: Tensor,
    epsilon: Epsilon,
    goal: AttackGoal,
) -> AdversarialBatch {
    let eps = epsilon.as_fraction();
    // Project into the l∞ ball ∩ [0, 1].
    for (a, &c) in adv.iter_mut().zip(clean.iter()) {
        *a = a.clamp(c - eps, c + eps).clamp(0.0, 1.0);
    }
    let predictions = model.predict(&adv);
    let success = predictions.iter().map(|&p| goal.is_success(p)).collect();
    AdversarialBatch { images: adv, predictions, success }
}

/// The gradient step direction for a goal: targeted attacks *descend* the
/// loss toward the target (−1), untargeted attacks *ascend* it (+1).
pub(crate) fn goal_sign_and_labels(goal: AttackGoal, batch: usize) -> (f32, Vec<usize>) {
    match goal {
        AttackGoal::Targeted(t) => (-1.0, vec![t; batch]),
        AttackGoal::Untargeted(src) => (1.0, vec![src; batch]),
    }
}
