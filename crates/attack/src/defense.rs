//! Image-space adversarial training — the other defence the paper's
//! conclusion proposes ("adversarial training … to make the feature
//! extraction more robust").
//!
//! Note the difference from AMR: AMR adversarially trains the *recommender*
//! against feature perturbations; this module adversarially trains the
//! *CNN* against image perturbations (Madry-style), hardening the feature
//! extractor itself.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use taamr_nn::{Sgd, SgdConfig, TinyResNet};
use taamr_tensor::Tensor;

use crate::{Attack, AttackGoal, Epsilon, Pgd};

/// Configuration of adversarial fine-tuning.
#[derive(Debug, Clone, PartialEq)]
pub struct AdversarialTrainingConfig {
    /// Perturbation budget of the training-time adversary.
    pub epsilon: Epsilon,
    /// PGD steps of the training-time adversary (Madry et al. use 7–10;
    /// smaller values trade robustness for speed).
    pub attack_steps: usize,
    /// Fraction of each batch replaced by adversarial examples (1.0 =
    /// Madry-style pure adversarial training; 0.5 = mixed).
    pub adversarial_fraction: f32,
    /// Fine-tuning epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Optimiser configuration.
    pub sgd: SgdConfig,
}

impl Default for AdversarialTrainingConfig {
    fn default() -> Self {
        AdversarialTrainingConfig {
            epsilon: Epsilon::from_255(8.0),
            attack_steps: 5,
            adversarial_fraction: 0.5,
            epochs: 5,
            batch_size: 16,
            sgd: SgdConfig { lr: 0.01, ..SgdConfig::default() },
        }
    }
}

/// Adversarially fine-tunes `net` on `(images, labels)`: each mini-batch is
/// (partially) replaced by untargeted PGD examples generated against the
/// *current* network before the gradient step. Returns the mean training
/// loss per epoch.
///
/// # Panics
///
/// Panics if `images` is not NCHW, label counts mismatch, or the config is
/// degenerate (zero epochs/batch, fraction outside `[0, 1]`).
pub fn adversarial_finetune(
    net: &mut TinyResNet,
    images: &Tensor,
    labels: &[usize],
    config: &AdversarialTrainingConfig,
    rng: &mut StdRng,
) -> Vec<f32> {
    assert_eq!(images.rank(), 4, "adversarial training expects NCHW images");
    let n = images.dims()[0];
    assert_eq!(labels.len(), n, "one label per image required");
    assert!(config.epochs > 0 && config.batch_size > 0, "degenerate training schedule");
    assert!(
        (0.0..=1.0).contains(&config.adversarial_fraction),
        "adversarial fraction must be in [0, 1]"
    );
    let sample_len: usize = images.dims()[1..].iter().product();
    let attack = Pgd::with_steps(config.epsilon, config.attack_steps);

    let mut order: Vec<usize> = (0..n).collect();
    let mut sgd = Sgd::new(config.sgd.clone());
    let mut history = Vec::with_capacity(config.epochs);
    for _ in 0..config.epochs {
        order.shuffle(rng);
        let mut total = 0.0f64;
        let mut batches = 0usize;
        for chunk in order.chunks(config.batch_size) {
            let (mut batch, batch_labels) = gather(images, labels, chunk, sample_len);
            // Adversarialise a prefix of the batch. Untargeted PGD per the
            // majority class is wrong for mixed labels, so attack per label
            // group (all labels in the group share the goal).
            let n_adv =
                (chunk.len() as f32 * config.adversarial_fraction).round() as usize;
            if n_adv > 0 {
                let mut attack_rng = StdRng::seed_from_u64(rng.gen());
                // Group indices by label to batch attacks with one goal.
                let mut by_label: std::collections::BTreeMap<usize, Vec<usize>> =
                    std::collections::BTreeMap::new();
                for (bi, &label) in batch_labels.iter().enumerate().take(n_adv) {
                    by_label.entry(label).or_default().push(bi);
                }
                for (label, members) in by_label {
                    let sub = gather_rows(&batch, &members, sample_len);
                    let adv = attack
                        .perturb(
                            &mut crate::WhiteBox(&mut *net),
                            &sub,
                            AttackGoal::Untargeted(label),
                            &mut attack_rng,
                        )
                        .expect("white-box PGD cannot fail on a white-box worker");
                    scatter_rows(&mut batch, &adv.data, &members, sample_len);
                }
            }
            net.zero_grads();
            let loss = net.train_backward(&batch, &batch_labels);
            sgd.step(&mut net.params_mut());
            total += f64::from(loss);
            batches += 1;
        }
        history.push((total / batches.max(1) as f64) as f32);
        sgd.advance_epoch();
    }
    history
}

fn gather(
    images: &Tensor,
    labels: &[usize],
    indices: &[usize],
    sample_len: usize,
) -> (Tensor, Vec<usize>) {
    let mut dims = images.dims().to_vec();
    dims[0] = indices.len();
    let mut out = Tensor::zeros(&dims);
    let src = images.as_slice();
    let dst = out.as_mut_slice();
    let mut out_labels = Vec::with_capacity(indices.len());
    for (bi, &si) in indices.iter().enumerate() {
        dst[bi * sample_len..(bi + 1) * sample_len]
            .copy_from_slice(&src[si * sample_len..(si + 1) * sample_len]);
        out_labels.push(labels[si]);
    }
    (out, out_labels)
}

fn gather_rows(batch: &Tensor, rows: &[usize], sample_len: usize) -> Tensor {
    let mut dims = batch.dims().to_vec();
    dims[0] = rows.len();
    let mut out = Tensor::zeros(&dims);
    for (bi, &si) in rows.iter().enumerate() {
        out.as_mut_slice()[bi * sample_len..(bi + 1) * sample_len]
            .copy_from_slice(&batch.as_slice()[si * sample_len..(si + 1) * sample_len]);
    }
    out
}

fn scatter_rows(batch: &mut Tensor, sub: &Tensor, rows: &[usize], sample_len: usize) {
    for (bi, &si) in rows.iter().enumerate() {
        batch.as_mut_slice()[si * sample_len..(si + 1) * sample_len]
            .copy_from_slice(&sub.as_slice()[bi * sample_len..(bi + 1) * sample_len]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taamr_nn::{
        ImageClassifier, LrSchedule, TinyResNetConfig, Trainer, TrainerConfig,
    };
    use taamr_tensor::seeded_rng;

    fn easy_set(rng: &mut impl Rng) -> (Tensor, Vec<usize>) {
        let n = 24;
        let mut images = Tensor::zeros(&[n, 3, 8, 8]);
        let mut labels = Vec::with_capacity(n);
        let sample = 3 * 8 * 8;
        for i in 0..n {
            let class = i % 2;
            let base = if class == 0 { 0.25 } else { 0.75 };
            for j in 0..sample {
                images.as_mut_slice()[i * sample + j] = base + rng.gen_range(-0.05..0.05);
            }
            labels.push(class);
        }
        (images, labels)
    }

    fn pretrained(rng: &mut StdRng) -> (TinyResNet, Tensor, Vec<usize>) {
        let arch = TinyResNetConfig::tiny_for_tests(2);
        let mut net = TinyResNet::new(&arch, rng);
        let (images, labels) = easy_set(rng);
        let trainer = Trainer::new(TrainerConfig {
            epochs: 8,
            batch_size: 8,
            sgd: SgdConfig {
                lr: 0.05,
                momentum: 0.9,
                weight_decay: 5e-4,
                schedule: LrSchedule::Constant,
            },
            log_every: 0,
            divergence: Default::default(),
        });
        trainer.fit(&mut net, &images, &labels, rng).unwrap();
        (net, images, labels)
    }

    /// Untargeted PGD success against `net` on the given set.
    fn attack_success(net: &mut TinyResNet, images: &Tensor, labels: &[usize]) -> f64 {
        let mut rng = seeded_rng(42);
        let attack = Pgd::with_steps(Epsilon::from_255(8.0), 5);
        // Attack per label group.
        let mut fooled = 0usize;
        let mut total = 0usize;
        let sample_len: usize = images.dims()[1..].iter().product();
        for label in [0usize, 1] {
            let members: Vec<usize> =
                (0..labels.len()).filter(|&i| labels[i] == label).collect();
            let sub = gather_rows(images, &members, sample_len);
            let adv = attack
                .perturb(
                    &mut crate::WhiteBox(&mut *net),
                    &sub,
                    AttackGoal::Untargeted(label),
                    &mut rng,
                )
                .unwrap();
            fooled += adv.success.iter().filter(|&&s| s).count();
            total += adv.success.len();
        }
        fooled as f64 / total as f64
    }

    #[test]
    fn adversarial_training_reduces_attack_success() {
        let mut rng = seeded_rng(0);
        let (mut net, images, labels) = pretrained(&mut rng);
        let before = attack_success(&mut net, &images, &labels);

        let cfg = AdversarialTrainingConfig {
            epsilon: Epsilon::from_255(8.0),
            attack_steps: 5,
            adversarial_fraction: 1.0,
            epochs: 6,
            batch_size: 8,
            sgd: SgdConfig {
                lr: 0.02,
                momentum: 0.9,
                weight_decay: 5e-4,
                schedule: LrSchedule::Constant,
            },
        };
        adversarial_finetune(&mut net, &images, &labels, &cfg, &mut rng);
        let after = attack_success(&mut net, &images, &labels);
        assert!(
            after <= before,
            "adversarial training should not increase attack success: {before} -> {after}"
        );
        // Clean accuracy must survive.
        let preds = net.predict(&images);
        let acc = preds.iter().zip(&labels).filter(|(p, l)| p == l).count() as f32
            / labels.len() as f32;
        assert!(acc > 0.8, "clean accuracy collapsed to {acc}");
    }

    #[test]
    fn zero_fraction_is_plain_finetuning() {
        let mut rng = seeded_rng(1);
        let (mut net, images, labels) = pretrained(&mut rng);
        let cfg = AdversarialTrainingConfig {
            adversarial_fraction: 0.0,
            epochs: 2,
            ..AdversarialTrainingConfig::default()
        };
        let history = adversarial_finetune(&mut net, &images, &labels, &cfg, &mut rng);
        assert_eq!(history.len(), 2);
        assert!(history.iter().all(|l| l.is_finite()));
    }

    #[test]
    #[should_panic(expected = "fraction must be in")]
    fn rejects_bad_fraction() {
        let mut rng = seeded_rng(2);
        let (mut net, images, labels) = pretrained(&mut rng);
        let cfg = AdversarialTrainingConfig {
            adversarial_fraction: 1.5,
            ..AdversarialTrainingConfig::default()
        };
        adversarial_finetune(&mut net, &images, &labels, &cfg, &mut rng);
    }
}
