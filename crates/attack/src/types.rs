//! Attack configuration and result types.

use std::fmt;

use taamr_tensor::Tensor;

/// An `l∞` perturbation budget on the paper's 0–255 pixel scale.
///
/// The paper reports ε ∈ {2, 4, 8, 16} "normalized to a 0/1 scale"; this
/// type stores the 0–255 value and exposes the normalised fraction used on
/// `[0, 1]` images.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Epsilon(f32);

impl Epsilon {
    /// Creates a budget from a 0–255-scale value.
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative, non-finite, or above 255.
    pub fn from_255(value: f32) -> Self {
        assert!(value.is_finite() && (0.0..=255.0).contains(&value), "epsilon {value} out of range");
        Epsilon(value)
    }

    /// The paper's ε sweep: {2, 4, 8, 16}.
    pub fn paper_sweep() -> [Epsilon; 4] {
        [Self::from_255(2.0), Self::from_255(4.0), Self::from_255(8.0), Self::from_255(16.0)]
    }

    /// The budget on the 0–255 scale.
    pub fn as_255(self) -> f32 {
        self.0
    }

    /// The budget as a fraction of the `[0, 1]` pixel range.
    pub fn as_fraction(self) -> f32 {
        self.0 / 255.0
    }
}

impl fmt::Display for Epsilon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ε={}", self.0)
    }
}

/// What the adversary wants from the classifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackGoal {
    /// Misclassify *as* the given class (the paper's main setting).
    Targeted(usize),
    /// Misclassify *away from* the given (true) class.
    Untargeted(usize),
}

impl AttackGoal {
    /// Whether a post-attack prediction satisfies the goal.
    pub fn is_success(self, prediction: usize) -> bool {
        match self {
            AttackGoal::Targeted(t) => prediction == t,
            AttackGoal::Untargeted(src) => prediction != src,
        }
    }

    /// The class the goal refers to (target or source).
    pub fn class(self) -> usize {
        match self {
            AttackGoal::Targeted(c) | AttackGoal::Untargeted(c) => c,
        }
    }
}

/// The result of attacking a batch of images.
#[derive(Debug, Clone, PartialEq)]
pub struct AdversarialBatch {
    /// The perturbed images (same NCHW shape as the input).
    pub images: Tensor,
    /// Post-attack predicted class per image.
    pub predictions: Vec<usize>,
    /// Per-image goal satisfaction.
    pub success: Vec<bool>,
}

impl AdversarialBatch {
    /// Stable FNV-1a content hash of the batch: image shape, every pixel
    /// by IEEE-754 bit pattern, predictions, and per-image success flags.
    /// Attacks derive per-item RNG streams from `item_seed`, so this hash
    /// is invariant under the thread count — the property replay records
    /// pin down.
    pub fn content_hash(&self) -> u64 {
        let mut h = taamr_replay::Fnv::new();
        h.usizes(self.images.dims());
        h.usize(self.images.len());
        for &v in self.images.iter() {
            h.f32(v);
        }
        h.usizes(&self.predictions);
        h.bools(&self.success);
        h.finish()
    }

    /// Fraction of images whose attack succeeded.
    pub fn success_rate(&self) -> f64 {
        if self.success.is_empty() {
            0.0
        } else {
            self.success.iter().filter(|&&s| s).count() as f64 / self.success.len() as f64
        }
    }

    /// Largest `l∞` distance from the clean batch.
    ///
    /// # Panics
    ///
    /// Panics if `clean` has a different shape.
    pub fn linf_distance(&self, clean: &Tensor) -> f32 {
        assert_eq!(clean.dims(), self.images.dims(), "shape mismatch");
        self.images
            .iter()
            .zip(clean.iter())
            .fold(0.0f32, |m, (&a, &c)| m.max((a - c).abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_scales() {
        let e = Epsilon::from_255(8.0);
        assert_eq!(e.as_255(), 8.0);
        assert!((e.as_fraction() - 8.0 / 255.0).abs() < 1e-9);
        assert_eq!(e.to_string(), "ε=8");
    }

    #[test]
    fn paper_sweep_is_doubling() {
        let sweep = Epsilon::paper_sweep();
        assert_eq!(sweep.map(|e| e.as_255()), [2.0, 4.0, 8.0, 16.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn negative_epsilon_panics() {
        Epsilon::from_255(-1.0);
    }

    #[test]
    fn goal_success_semantics() {
        assert!(AttackGoal::Targeted(3).is_success(3));
        assert!(!AttackGoal::Targeted(3).is_success(2));
        assert!(AttackGoal::Untargeted(3).is_success(2));
        assert!(!AttackGoal::Untargeted(3).is_success(3));
        assert_eq!(AttackGoal::Targeted(5).class(), 5);
    }

    #[test]
    fn batch_success_rate() {
        let b = AdversarialBatch {
            images: Tensor::zeros(&[2, 3, 4, 4]),
            predictions: vec![1, 2],
            success: vec![true, false],
        };
        assert_eq!(b.success_rate(), 0.5);
    }

    #[test]
    fn linf_distance_is_max_abs_diff() {
        let clean = Tensor::zeros(&[1, 3, 2, 2]);
        let mut adv = Tensor::zeros(&[1, 3, 2, 2]);
        adv.as_mut_slice()[5] = 0.25;
        adv.as_mut_slice()[7] = -0.1;
        let b = AdversarialBatch { images: adv, predictions: vec![0], success: vec![false] };
        assert!((b.linf_distance(&clean) - 0.25).abs() < 1e-7);
    }
}
