//! Attack configuration and result types.

use std::fmt;

use taamr_tensor::Tensor;

/// An `l∞` perturbation budget on the paper's 0–255 pixel scale.
///
/// The paper reports ε ∈ {2, 4, 8, 16} "normalized to a 0/1 scale"; this
/// type stores the 0–255 value and exposes the normalised fraction used on
/// `[0, 1]` images.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Epsilon(f32);

impl Epsilon {
    /// Creates a budget from a 0–255-scale value.
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative, non-finite, or above 255.
    pub fn from_255(value: f32) -> Self {
        assert!(value.is_finite() && (0.0..=255.0).contains(&value), "epsilon {value} out of range");
        Epsilon(value)
    }

    /// The paper's ε sweep: {2, 4, 8, 16}.
    pub fn paper_sweep() -> [Epsilon; 4] {
        [Self::from_255(2.0), Self::from_255(4.0), Self::from_255(8.0), Self::from_255(16.0)]
    }

    /// The budget on the 0–255 scale.
    pub fn as_255(self) -> f32 {
        self.0
    }

    /// The budget as a fraction of the `[0, 1]` pixel range.
    pub fn as_fraction(self) -> f32 {
        self.0 / 255.0
    }
}

impl fmt::Display for Epsilon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ε={}", self.0)
    }
}

/// Where an attack's perturbation lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Surface {
    /// The attack perturbs item *images*; the recommender is reached
    /// indirectly through the feature extractor (the paper's setting).
    Pixels,
    /// The attack perturbs the recommender's *item feature vectors*
    /// directly, skipping the CNN (the AMR threat model).
    Embeddings,
}

/// What the adversary can observe about the system under attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    /// Full gradient access to the model (classifier or recommender).
    WhiteBox,
    /// Score-query access only: the adversary may ask "what would this
    /// item score with these contents?" at most `query_budget` times.
    BlackBox {
        /// Maximum number of fresh oracle queries per attacked item.
        query_budget: u64,
    },
}

/// An attack's threat model: which surface it perturbs and what access to
/// the victim it assumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ThreatModel {
    /// The perturbed surface.
    pub surface: Surface,
    /// The assumed level of access.
    pub access: Access,
}

/// A perturbation budget, generalising the pixel-space [`Epsilon`] to the
/// norm ball that matches the attack's [`Surface`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Budget {
    /// `l∞` ball of radius ε (0–255 scale) around the clean image, clipped
    /// to the valid pixel range — the paper's threat model.
    PixelLinf(Epsilon),
    /// `l2` ball of the given radius around the clean item embedding.
    EmbedL2(f32),
}

impl Budget {
    /// The budget's scalar magnitude on its native scale: ε on 0–255 for
    /// pixel budgets, the `l2` radius for embedding budgets.
    pub fn magnitude(&self) -> f32 {
        match *self {
            Budget::PixelLinf(eps) => eps.as_255(),
            Budget::EmbedL2(radius) => radius,
        }
    }

    /// The pixel budget, if this is a pixel-space ball.
    pub fn epsilon(&self) -> Option<Epsilon> {
        match *self {
            Budget::PixelLinf(eps) => Some(eps),
            Budget::EmbedL2(_) => None,
        }
    }

    /// The embedding radius, if this is an embedding-space ball.
    pub fn radius(&self) -> Option<f32> {
        match *self {
            Budget::PixelLinf(_) => None,
            Budget::EmbedL2(radius) => Some(radius),
        }
    }

    /// Whether `adv` stays inside the ball around `clean` (with a small
    /// float tolerance). Pixel budgets additionally require `adv` to stay in
    /// the valid `[0, 1]` range; embedding budgets check the `l2` distance
    /// per leading-dimension row.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn holds(&self, clean: &Tensor, adv: &Tensor) -> bool {
        assert_eq!(clean.dims(), adv.dims(), "shape mismatch");
        match *self {
            Budget::PixelLinf(eps) => {
                let bound = eps.as_fraction() + 1e-6;
                adv.iter()
                    .zip(clean.iter())
                    .all(|(&a, &c)| (a - c).abs() <= bound && (0.0..=1.0).contains(&a))
            }
            Budget::EmbedL2(radius) => {
                let rows = adv.dims().first().copied().unwrap_or(0);
                let row_len: usize = adv.dims().iter().skip(1).product();
                let bound = radius + 1e-5;
                (0..rows).all(|r| {
                    let a = &adv.as_slice()[r * row_len..(r + 1) * row_len];
                    let c = &clean.as_slice()[r * row_len..(r + 1) * row_len];
                    let d2: f32 = a.iter().zip(c).map(|(&x, &y)| (x - y) * (x - y)).sum();
                    d2.sqrt() <= bound
                })
            }
        }
    }
}

impl fmt::Display for Budget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Budget::PixelLinf(eps) => write!(f, "l∞ {eps}"),
            Budget::EmbedL2(radius) => write!(f, "l2 r={radius}"),
        }
    }
}

/// Typed failure of an attack run.
///
/// Attacks return errors — never panic — for conditions the *caller* chose:
/// an over-tight query budget or a target that lacks the access the attack's
/// [`ThreatModel`] requires. Shape and configuration misuse still panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackError {
    /// A black-box attacker spent more oracle queries than its budget.
    QueryBudgetExceeded {
        /// Queries already debited when the over-budget query arrived.
        used: u64,
        /// The declared budget.
        budget: u64,
    },
    /// The [`crate::AttackTarget`] does not expose the access this attack
    /// needs (e.g. a gradient attack pointed at a black-box oracle).
    UnsupportedTarget {
        /// The attack that was asked to run.
        attack: &'static str,
        /// The access kind it requires.
        needs: &'static str,
    },
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            AttackError::QueryBudgetExceeded { used, budget } => {
                write!(f, "query budget exhausted: {used} of {budget} oracle queries spent")
            }
            AttackError::UnsupportedTarget { attack, needs } => {
                write!(f, "{attack} cannot run against this target: it needs {needs}")
            }
        }
    }
}

impl std::error::Error for AttackError {}

impl From<taamr_recsys::QueryBudgetExceeded> for AttackError {
    fn from(e: taamr_recsys::QueryBudgetExceeded) -> Self {
        AttackError::QueryBudgetExceeded { used: e.used, budget: e.budget }
    }
}

/// What the adversary wants from the classifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackGoal {
    /// Misclassify *as* the given class (the paper's main setting).
    Targeted(usize),
    /// Misclassify *away from* the given (true) class.
    Untargeted(usize),
}

impl AttackGoal {
    /// Whether a post-attack prediction satisfies the goal.
    pub fn is_success(self, prediction: usize) -> bool {
        match self {
            AttackGoal::Targeted(t) => prediction == t,
            AttackGoal::Untargeted(src) => prediction != src,
        }
    }

    /// The class the goal refers to (target or source).
    pub fn class(self) -> usize {
        match self {
            AttackGoal::Targeted(c) | AttackGoal::Untargeted(c) => c,
        }
    }
}

/// The result of attacking a batch of items.
#[derive(Debug, Clone, PartialEq)]
pub struct AdversarialBatch {
    /// The perturbed payload, one row per attacked item, same shape as the
    /// input: NCHW images for [`Surface::Pixels`] attacks, `[n, d]` feature
    /// rows for [`Surface::Embeddings`] attacks.
    pub data: Tensor,
    /// Post-attack predicted class per item, when the target can measure
    /// one (pixel surfaces); empty for embedding surfaces.
    pub predictions: Vec<usize>,
    /// Per-item goal satisfaction.
    pub success: Vec<bool>,
}

impl AdversarialBatch {
    /// Stable FNV-1a content hash of the batch: payload shape, every value
    /// by IEEE-754 bit pattern, predictions, and per-item success flags.
    /// Attacks derive per-item RNG streams from [`crate::Attack::item_seed`],
    /// so this hash is invariant under the thread count — the property
    /// replay records pin down.
    pub fn content_hash(&self) -> u64 {
        let mut h = taamr_replay::Fnv::new();
        h.usizes(self.data.dims());
        h.usize(self.data.len());
        for &v in self.data.iter() {
            h.f32(v);
        }
        h.usizes(&self.predictions);
        h.bools(&self.success);
        h.finish()
    }

    /// Fraction of items whose attack succeeded.
    pub fn success_rate(&self) -> f64 {
        if self.success.is_empty() {
            0.0
        } else {
            self.success.iter().filter(|&&s| s).count() as f64 / self.success.len() as f64
        }
    }

    /// Largest `l∞` distance from the clean batch.
    ///
    /// # Panics
    ///
    /// Panics if `clean` has a different shape.
    pub fn linf_distance(&self, clean: &Tensor) -> f32 {
        assert_eq!(clean.dims(), self.data.dims(), "shape mismatch");
        self.data
            .iter()
            .zip(clean.iter())
            .fold(0.0f32, |m, (&a, &c)| m.max((a - c).abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_scales() {
        let e = Epsilon::from_255(8.0);
        assert_eq!(e.as_255(), 8.0);
        assert!((e.as_fraction() - 8.0 / 255.0).abs() < 1e-9);
        assert_eq!(e.to_string(), "ε=8");
    }

    #[test]
    fn paper_sweep_is_doubling() {
        let sweep = Epsilon::paper_sweep();
        assert_eq!(sweep.map(|e| e.as_255()), [2.0, 4.0, 8.0, 16.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn negative_epsilon_panics() {
        Epsilon::from_255(-1.0);
    }

    #[test]
    fn budget_magnitudes_and_accessors() {
        let px = Budget::PixelLinf(Epsilon::from_255(8.0));
        assert_eq!(px.magnitude(), 8.0);
        assert_eq!(px.epsilon(), Some(Epsilon::from_255(8.0)));
        assert_eq!(px.radius(), None);
        let em = Budget::EmbedL2(0.5);
        assert_eq!(em.magnitude(), 0.5);
        assert_eq!(em.epsilon(), None);
        assert_eq!(em.radius(), Some(0.5));
        assert_eq!(px.to_string(), "l∞ ε=8");
        assert_eq!(em.to_string(), "l2 r=0.5");
    }

    #[test]
    fn pixel_budget_holds_checks_ball_and_range() {
        let clean = Tensor::from_vec(vec![0.5, 0.5, 0.5, 0.5], &[1, 4]).unwrap();
        let budget = Budget::PixelLinf(Epsilon::from_255(255.0 * 0.1));
        let inside = Tensor::from_vec(vec![0.55, 0.45, 0.5, 0.59], &[1, 4]).unwrap();
        assert!(budget.holds(&clean, &inside));
        let outside = Tensor::from_vec(vec![0.7, 0.5, 0.5, 0.5], &[1, 4]).unwrap();
        assert!(!budget.holds(&clean, &outside));
    }

    #[test]
    fn embed_budget_holds_is_per_row_l2() {
        let clean = Tensor::from_vec(vec![0.0; 6], &[2, 3]).unwrap();
        let budget = Budget::EmbedL2(1.0);
        let inside = Tensor::from_vec(vec![0.5, 0.5, 0.5, 0.9, 0.0, 0.0], &[2, 3]).unwrap();
        assert!(budget.holds(&clean, &inside));
        // One row over the radius spoils the whole batch.
        let outside = Tensor::from_vec(vec![0.5, 0.5, 0.5, 1.5, 0.0, 0.0], &[2, 3]).unwrap();
        assert!(!budget.holds(&clean, &outside));
    }

    #[test]
    fn attack_error_formats_and_converts() {
        let e = AttackError::QueryBudgetExceeded { used: 5, budget: 5 };
        assert!(e.to_string().contains("query budget exhausted"));
        let u = AttackError::UnsupportedTarget { attack: "FGSM", needs: "gradients" };
        assert!(u.to_string().contains("FGSM"));
        let from: AttackError =
            taamr_recsys::QueryBudgetExceeded { used: 3, budget: 4 }.into();
        assert_eq!(from, AttackError::QueryBudgetExceeded { used: 3, budget: 4 });
    }

    #[test]
    fn goal_success_semantics() {
        assert!(AttackGoal::Targeted(3).is_success(3));
        assert!(!AttackGoal::Targeted(3).is_success(2));
        assert!(AttackGoal::Untargeted(3).is_success(2));
        assert!(!AttackGoal::Untargeted(3).is_success(3));
        assert_eq!(AttackGoal::Targeted(5).class(), 5);
    }

    #[test]
    fn batch_success_rate() {
        let b = AdversarialBatch {
            data: Tensor::zeros(&[2, 3, 4, 4]),
            predictions: vec![1, 2],
            success: vec![true, false],
        };
        assert_eq!(b.success_rate(), 0.5);
    }

    #[test]
    fn linf_distance_is_max_abs_diff() {
        let clean = Tensor::zeros(&[1, 3, 2, 2]);
        let mut adv = Tensor::zeros(&[1, 3, 2, 2]);
        adv.as_mut_slice()[5] = 0.25;
        adv.as_mut_slice()[7] = -0.1;
        let b = AdversarialBatch { data: adv, predictions: vec![0], success: vec![false] };
        assert!((b.linf_distance(&clean) - 0.25).abs() < 1e-7);
    }
}
