//! Parallel per-item attack execution.
//!
//! The pipeline attacks every item of a source category independently: each
//! item has its own image, its own RNG seed, and a result that must not
//! depend on any other item. [`par_attack_batch`] exploits exactly that
//! independence — items are split into chunks, each chunk runs on a worker
//! thread with its own model clone, and *within* a chunk every item is still
//! attacked as a batch of one with its own seed. Chunk size and thread count
//! are therefore pure scheduling knobs: the output is bitwise identical to a
//! serial per-item loop.

use rayon::prelude::*;
use taamr_nn::ImageClassifier;
use taamr_tensor::Tensor;

use crate::{AdversarialBatch, Attack, AttackGoal};

/// Derives the RNG seed for one attacked item from the experiment's master
/// seed: `master ^ (item_id << 20)`.
///
/// The shift keeps small item ids out of the master seed's low bits;
/// `StdRng`'s SplitMix64 seeding then disperses the XOR-combined word, so
/// neighbouring items draw unrelated streams.
pub fn item_seed(master_seed: u64, item_id: u64) -> u64 {
    master_seed ^ item_id.wrapping_shl(20)
}

/// Attacks every image row of `images` independently, in parallel.
///
/// Item `i` is perturbed as a single-image batch with
/// [`Attack::perturb_seeded`] and `item_seeds[i]`, so its result depends
/// only on `(model, image, goal, seed)`. `chunk_size` controls how many
/// items a worker handles per model clone; it does not affect the output.
///
/// # Panics
///
/// Panics if `images` is not rank 4, `item_seeds` does not hold one seed
/// per image, or `chunk_size` is zero.
pub fn par_attack_batch<M>(
    model: &M,
    attack: &dyn Attack,
    images: &Tensor,
    goal: AttackGoal,
    item_seeds: &[u64],
    chunk_size: usize,
) -> AdversarialBatch
where
    M: ImageClassifier + Clone + Send + Sync + 'static,
{
    assert_eq!(images.rank(), 4, "par_attack_batch expects NCHW images");
    let n = images.dims()[0];
    assert_eq!(item_seeds.len(), n, "one seed per attacked item required");
    assert!(chunk_size > 0, "chunk size must be positive");
    // Counted at batch entry (not per worker chunk) so the value is
    // invariant under thread count and chunking.
    taamr_obs::add(taamr_obs::Counter::AttackItems, n as u64);

    let sample_dims = {
        let mut d = images.dims().to_vec();
        d[0] = 1;
        d
    };
    let sample_len: usize = sample_dims[1..].iter().product();
    let src = images.as_slice();
    let items: Vec<(Tensor, u64)> = (0..n)
        .map(|i| {
            let data = src[i * sample_len..(i + 1) * sample_len].to_vec();
            let img = Tensor::from_vec(data, &sample_dims).expect("row shape is consistent");
            (img, item_seeds[i])
        })
        .collect();

    let per_item: Vec<AdversarialBatch> = items
        .par_chunks(chunk_size)
        .map_init(
            || model.clone(),
            |m, chunk| {
                chunk
                    .iter()
                    .map(|(img, seed)| {
                        attack.perturb_seeded(m as &mut dyn ImageClassifier, img, goal, *seed)
                    })
                    .collect::<Vec<AdversarialBatch>>()
            },
        )
        .collect::<Vec<Vec<AdversarialBatch>>>()
        .concat();

    let mut data = Vec::with_capacity(n * sample_len);
    let mut predictions = Vec::with_capacity(n);
    let mut success = Vec::with_capacity(n);
    for item in per_item {
        data.extend_from_slice(item.images.as_slice());
        predictions.extend(item.predictions);
        success.extend(item.success);
    }
    AdversarialBatch {
        images: Tensor::from_vec(data, images.dims()).expect("rows reassemble to input shape"),
        predictions,
        success,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bim, Epsilon, Fgsm, Pgd};
    use taamr_nn::{TinyResNet, TinyResNetConfig};
    use taamr_tensor::seeded_rng;

    fn setup(n: usize) -> (TinyResNet, Tensor, Vec<u64>) {
        let net = TinyResNet::new(&TinyResNetConfig::tiny_for_tests(4), &mut seeded_rng(0));
        let x = Tensor::rand_uniform(&[n, 3, 16, 16], 0.05, 0.95, &mut seeded_rng(1));
        let seeds: Vec<u64> = (0..n as u64).map(|i| item_seed(12345, i)).collect();
        (net, x, seeds)
    }

    /// Reference implementation: the serial per-item loop the parallel path
    /// must reproduce exactly.
    fn serial_per_item(
        net: &TinyResNet,
        attack: &dyn Attack,
        images: &Tensor,
        goal: AttackGoal,
        seeds: &[u64],
    ) -> AdversarialBatch {
        let mut m = net.clone();
        let n = images.dims()[0];
        let sample_len: usize = images.dims()[1..].iter().product();
        let mut dims = images.dims().to_vec();
        dims[0] = 1;
        let mut data = Vec::new();
        let mut predictions = Vec::new();
        let mut success = Vec::new();
        for (i, &seed) in seeds.iter().enumerate().take(n) {
            let row = images.as_slice()[i * sample_len..(i + 1) * sample_len].to_vec();
            let img = Tensor::from_vec(row, &dims).unwrap();
            let out = attack.perturb_seeded(&mut m, &img, goal, seed);
            data.extend_from_slice(out.images.as_slice());
            predictions.extend(out.predictions);
            success.extend(out.success);
        }
        AdversarialBatch {
            images: Tensor::from_vec(data, images.dims()).unwrap(),
            predictions,
            success,
        }
    }

    #[test]
    fn matches_serial_loop_for_every_attack() {
        let (net, x, seeds) = setup(5);
        let goal = AttackGoal::Targeted(2);
        let eps = Epsilon::from_255(8.0);
        let attacks: [&dyn Attack; 3] =
            [&Fgsm::new(eps), &Bim::new(eps, 3), &Pgd::with_steps(eps, 3)];
        for attack in attacks {
            let reference = serial_per_item(&net, attack, &x, goal, &seeds);
            for threads in [1usize, 2, 8] {
                let par = rayon::with_threads(threads, || {
                    par_attack_batch(&net, attack, &x, goal, &seeds, 2)
                });
                assert_eq!(par.images, reference.images, "{} x{threads}", attack.name());
                assert_eq!(par.predictions, reference.predictions);
                assert_eq!(par.success, reference.success);
            }
        }
    }

    #[test]
    fn chunk_size_does_not_change_results() {
        let (net, x, seeds) = setup(6);
        let goal = AttackGoal::Targeted(1);
        let attack = Pgd::with_steps(Epsilon::from_255(8.0), 3);
        let a = par_attack_batch(&net, &attack, &x, goal, &seeds, 1);
        let b = par_attack_batch(&net, &attack, &x, goal, &seeds, 4);
        let c = par_attack_batch(&net, &attack, &x, goal, &seeds, 100);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn respects_epsilon_under_concurrency() {
        let (net, x, seeds) = setup(6);
        for eps in Epsilon::paper_sweep() {
            let attack = Pgd::with_steps(eps, 4);
            let adv = rayon::with_threads(8, || {
                par_attack_batch(&net, &attack, &x, AttackGoal::Targeted(0), &seeds, 2)
            });
            assert!(
                adv.linf_distance(&x) <= eps.as_fraction() + 1e-6,
                "l∞ budget violated at {eps}"
            );
            assert!(adv.images.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn seeds_matter_per_item() {
        let (net, x, seeds) = setup(3);
        let goal = AttackGoal::Targeted(2);
        let attack = Pgd::with_steps(Epsilon::from_255(16.0), 2);
        let a = par_attack_batch(&net, &attack, &x, goal, &seeds, 2);
        let other: Vec<u64> = seeds.iter().map(|s| s ^ 0xdead_beef).collect();
        let b = par_attack_batch(&net, &attack, &x, goal, &other, 2);
        assert_ne!(a.images, b.images, "PGD random starts should differ across seeds");
    }

    #[test]
    fn content_hash_is_thread_invariant_and_bit_sensitive() {
        // The replay harness pins attack artifacts via
        // AdversarialBatch::content_hash; the digest must be one number at
        // every thread count, and any single perturbed pixel must move it.
        let (net, x, seeds) = setup(5);
        let goal = AttackGoal::Targeted(2);
        let attack = Pgd::with_steps(Epsilon::from_255(8.0), 3);
        let reference = par_attack_batch(&net, &attack, &x, goal, &seeds, 2);
        for threads in [1usize, 2, 8] {
            let h = rayon::with_threads(threads, || {
                par_attack_batch(&net, &attack, &x, goal, &seeds, 2).content_hash()
            });
            assert_eq!(h, reference.content_hash(), "content hash at {threads} threads");
        }
        let mut tweaked = reference.clone();
        let mut pixels = tweaked.images.as_slice().to_vec();
        pixels[0] = f32::from_bits(pixels[0].to_bits() ^ 1);
        tweaked.images = Tensor::from_vec(pixels, reference.images.dims()).unwrap();
        assert_ne!(
            tweaked.content_hash(),
            reference.content_hash(),
            "a one-bit pixel change must change the hash"
        );
        let mut flipped = reference.clone();
        if let Some(s) = flipped.success.first_mut() {
            *s = !*s;
        }
        assert_ne!(flipped.content_hash(), reference.content_hash());
    }

    #[test]
    fn item_seed_is_injective_over_small_ids() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000u64 {
            assert!(seen.insert(item_seed(42, i)));
        }
    }

    #[test]
    #[should_panic(expected = "one seed per attacked item")]
    fn rejects_seed_count_mismatch() {
        let (net, x, _) = setup(3);
        let attack = Fgsm::new(Epsilon::from_255(4.0));
        par_attack_batch(&net, &attack, &x, AttackGoal::Targeted(0), &[1, 2], 2);
    }
}
