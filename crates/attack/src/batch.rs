//! The parallel per-item batch driver behind [`Attack::perturb_batch`].
//!
//! The pipeline attacks every item of a source category independently: each
//! item has its own payload row, its own RNG seed derived via
//! [`Attack::item_seed`], and a result that must not depend on any other
//! item. The driver exploits exactly that independence — items are split
//! into chunks, each chunk runs on a worker thread with its own
//! [`crate::TargetWorker`], and *within* a chunk every item is still bound
//! and attacked as a batch of one with its own seed. Chunk size and thread
//! count are therefore pure scheduling knobs: the output is bitwise
//! identical to a serial per-item loop.

use rayon::prelude::*;
use taamr_tensor::Tensor;

use crate::{AdversarialBatch, Attack, AttackError, AttackGoal, AttackTarget};

/// The default body of [`Attack::perturb_batch`]; generic so trait objects
/// (`dyn Attack`) can dispatch into it.
pub(crate) fn drive<A: Attack + ?Sized>(
    attack: &A,
    target: &dyn AttackTarget,
    batch: &Tensor,
    goal: AttackGoal,
    master_seed: u64,
    items: &[u64],
    chunk_size: usize,
) -> Result<AdversarialBatch, AttackError> {
    assert!(batch.rank() >= 2, "perturb_batch expects one payload row per item");
    let n = batch.dims()[0];
    assert_eq!(items.len(), n, "one item id per batch row required");
    assert!(chunk_size > 0, "chunk size must be positive");
    // Counted at batch entry (not per worker chunk) so the value is
    // invariant under thread count and chunking.
    taamr_obs::add(taamr_obs::Counter::AttackItems, n as u64);

    let sample_dims = {
        let mut d = batch.dims().to_vec();
        d[0] = 1;
        d
    };
    let sample_len: usize = sample_dims[1..].iter().product();
    let src = batch.as_slice();
    let rows: Vec<(Tensor, u64)> = (0..n)
        .map(|i| {
            let data = src[i * sample_len..(i + 1) * sample_len].to_vec();
            let row = Tensor::from_vec(data, &sample_dims).expect("row shape is consistent");
            (row, items[i])
        })
        .collect();

    let per_item: Vec<Result<AdversarialBatch, AttackError>> = rows
        .par_chunks(chunk_size)
        .map_init(
            || target.worker(),
            |worker, chunk| {
                chunk
                    .iter()
                    .map(|(row, item)| {
                        worker.bind(*item);
                        attack.perturb_seeded(
                            worker.as_mut(),
                            row,
                            goal,
                            attack.item_seed(master_seed, *item),
                        )
                    })
                    .collect::<Vec<Result<AdversarialBatch, AttackError>>>()
            },
        )
        .collect::<Vec<Vec<Result<AdversarialBatch, AttackError>>>>()
        .concat();

    let mut data = Vec::with_capacity(n * sample_len);
    let mut predictions = Vec::with_capacity(n);
    let mut success = Vec::with_capacity(n);
    // First error in item order wins, so failures are as deterministic as
    // successes.
    for item in per_item {
        let item = item?;
        data.extend_from_slice(item.data.as_slice());
        predictions.extend(item.predictions);
        success.extend(item.success);
    }
    Ok(AdversarialBatch {
        data: Tensor::from_vec(data, batch.dims()).expect("rows reassemble to input shape"),
        predictions,
        success,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bim, Epsilon, Fgsm, Pgd, WhiteBox, WhiteBoxTarget};
    use taamr_nn::{TinyResNet, TinyResNetConfig};
    use taamr_tensor::seeded_rng;

    const MASTER: u64 = 12345;

    fn setup(n: usize) -> (TinyResNet, Tensor, Vec<u64>) {
        let net = TinyResNet::new(&TinyResNetConfig::tiny_for_tests(4), &mut seeded_rng(0));
        let x = Tensor::rand_uniform(&[n, 3, 16, 16], 0.05, 0.95, &mut seeded_rng(1));
        let items: Vec<u64> = (0..n as u64).collect();
        (net, x, items)
    }

    /// Reference implementation: the serial per-item loop the parallel path
    /// must reproduce exactly.
    fn serial_per_item(
        net: &TinyResNet,
        attack: &dyn Attack,
        images: &Tensor,
        goal: AttackGoal,
        items: &[u64],
    ) -> AdversarialBatch {
        let mut m = net.clone();
        let n = images.dims()[0];
        let sample_len: usize = images.dims()[1..].iter().product();
        let mut dims = images.dims().to_vec();
        dims[0] = 1;
        let mut data = Vec::new();
        let mut predictions = Vec::new();
        let mut success = Vec::new();
        for (i, &item) in items.iter().enumerate().take(n) {
            let row = images.as_slice()[i * sample_len..(i + 1) * sample_len].to_vec();
            let img = Tensor::from_vec(row, &dims).unwrap();
            let out = attack
                .perturb_seeded(&mut WhiteBox(&mut m), &img, goal, attack.item_seed(MASTER, item))
                .unwrap();
            data.extend_from_slice(out.data.as_slice());
            predictions.extend(out.predictions);
            success.extend(out.success);
        }
        AdversarialBatch {
            data: Tensor::from_vec(data, images.dims()).unwrap(),
            predictions,
            success,
        }
    }

    #[test]
    fn matches_serial_loop_for_every_attack() {
        let (net, x, items) = setup(5);
        let goal = AttackGoal::Targeted(2);
        let eps = Epsilon::from_255(8.0);
        let attacks: [&dyn Attack; 3] =
            [&Fgsm::new(eps), &Bim::new(eps, 3), &Pgd::with_steps(eps, 3)];
        for attack in attacks {
            let reference = serial_per_item(&net, attack, &x, goal, &items);
            let target = WhiteBoxTarget::new(&net);
            for threads in [1usize, 2, 8] {
                let par = rayon::with_threads(threads, || {
                    attack.perturb_batch(&target, &x, goal, MASTER, &items, 2).unwrap()
                });
                assert_eq!(par.data, reference.data, "{} x{threads}", attack.name());
                assert_eq!(par.predictions, reference.predictions);
                assert_eq!(par.success, reference.success);
            }
        }
    }

    #[test]
    fn chunk_size_does_not_change_results() {
        let (net, x, items) = setup(6);
        let goal = AttackGoal::Targeted(1);
        let attack = Pgd::with_steps(Epsilon::from_255(8.0), 3);
        let target = WhiteBoxTarget::new(&net);
        let a = attack.perturb_batch(&target, &x, goal, MASTER, &items, 1).unwrap();
        let b = attack.perturb_batch(&target, &x, goal, MASTER, &items, 4).unwrap();
        let c = attack.perturb_batch(&target, &x, goal, MASTER, &items, 100).unwrap();
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn respects_epsilon_under_concurrency() {
        let (net, x, items) = setup(6);
        let target = WhiteBoxTarget::new(&net);
        for eps in Epsilon::paper_sweep() {
            let attack = Pgd::with_steps(eps, 4);
            let adv = rayon::with_threads(8, || {
                attack
                    .perturb_batch(&target, &x, AttackGoal::Targeted(0), MASTER, &items, 2)
                    .unwrap()
            });
            assert!(
                adv.linf_distance(&x) <= eps.as_fraction() + 1e-6,
                "l∞ budget violated at {eps}"
            );
            assert!(adv.data.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn master_seed_matters_per_item() {
        let (net, x, items) = setup(3);
        let goal = AttackGoal::Targeted(2);
        let attack = Pgd::with_steps(Epsilon::from_255(16.0), 2);
        let target = WhiteBoxTarget::new(&net);
        let a = attack.perturb_batch(&target, &x, goal, MASTER, &items, 2).unwrap();
        let b = attack.perturb_batch(&target, &x, goal, MASTER ^ 0xdead_beef, &items, 2).unwrap();
        assert_ne!(a.data, b.data, "PGD random starts should differ across master seeds");
    }

    #[test]
    fn content_hash_is_thread_invariant_and_bit_sensitive() {
        // The replay harness pins attack artifacts via
        // AdversarialBatch::content_hash; the digest must be one number at
        // every thread count, and any single perturbed value must move it.
        let (net, x, items) = setup(5);
        let goal = AttackGoal::Targeted(2);
        let attack = Pgd::with_steps(Epsilon::from_255(8.0), 3);
        let target = WhiteBoxTarget::new(&net);
        let reference = attack.perturb_batch(&target, &x, goal, MASTER, &items, 2).unwrap();
        for threads in [1usize, 2, 8] {
            let h = rayon::with_threads(threads, || {
                attack.perturb_batch(&target, &x, goal, MASTER, &items, 2).unwrap().content_hash()
            });
            assert_eq!(h, reference.content_hash(), "content hash at {threads} threads");
        }
        let mut tweaked = reference.clone();
        let mut pixels = tweaked.data.as_slice().to_vec();
        pixels[0] = f32::from_bits(pixels[0].to_bits() ^ 1);
        tweaked.data = Tensor::from_vec(pixels, reference.data.dims()).unwrap();
        assert_ne!(
            tweaked.content_hash(),
            reference.content_hash(),
            "a one-bit pixel change must change the hash"
        );
        let mut flipped = reference.clone();
        if let Some(s) = flipped.success.first_mut() {
            *s = !*s;
        }
        assert_ne!(flipped.content_hash(), reference.content_hash());
    }

    #[test]
    fn item_seed_is_injective_over_small_ids() {
        let attack = Fgsm::new(Epsilon::from_255(4.0));
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000u64 {
            assert!(seen.insert(attack.item_seed(42, i)));
        }
    }

    #[test]
    #[should_panic(expected = "one item id per batch row")]
    fn rejects_item_count_mismatch() {
        let (net, x, _) = setup(3);
        let attack = Fgsm::new(Epsilon::from_255(4.0));
        let target = WhiteBoxTarget::new(&net);
        let _ = attack.perturb_batch(&target, &x, AttackGoal::Targeted(0), MASTER, &[1, 2], 2);
    }
}
