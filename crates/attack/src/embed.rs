//! Multi-step embedding-space attack on the recommender's item features.
//!
//! Instead of routing a perturbation through pixels and the CNN, the
//! adversary edits the item's feature vector directly inside an `l2` ball —
//! the threat model AMR (Tang et al., TKDE 2019) trains against. Two step
//! rules are provided: coordinate-sign ascent (the FGSM analogue in feature
//! space) and normalised-gradient `l2` ascent.

use rand::rngs::StdRng;
use taamr_tensor::Tensor;

use crate::{
    Access, AdversarialBatch, Attack, AttackError, AttackGoal, Budget, Surface, TargetWorker,
    ThreatModel,
};

/// The per-step update rule of an [`EmbedAttack`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EmbedStep {
    /// Coordinate-wise sign ascent, scaled so each step moves `radius/steps`
    /// in `l2`.
    Sign,
    /// Step along the normalised score gradient (`l2` steepest ascent).
    L2,
}

/// White-box embedding-space attacker: `steps` ascent steps on the bound
/// item's feature vector, projected back into the `l2` ball of the given
/// radius after every step.
///
/// The recommenders in this reproduction score bilinearly in the item
/// features, so the score gradient is constant over the ball and is
/// computed once per item; nonlinear models would re-evaluate it per step
/// through [`crate::EmbeddingAccess::grad`].
///
/// Success means the item's probe-mean score strictly increased. The result
/// batch carries the perturbed feature rows as its payload and no class
/// predictions (there is no classifier in this threat model).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmbedAttack {
    radius: f32,
    steps: usize,
    rule: EmbedStep,
}

impl EmbedAttack {
    /// Sign-ascent variant.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is not positive and finite or `steps` is zero.
    pub fn sign(radius: f32, steps: usize) -> Self {
        Self::with_rule(radius, steps, EmbedStep::Sign)
    }

    /// Normalised-gradient `l2` variant.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is not positive and finite or `steps` is zero.
    pub fn l2(radius: f32, steps: usize) -> Self {
        Self::with_rule(radius, steps, EmbedStep::L2)
    }

    fn with_rule(radius: f32, steps: usize, rule: EmbedStep) -> Self {
        assert!(radius.is_finite() && radius > 0.0, "radius must be positive");
        assert!(steps > 0, "step count must be positive");
        EmbedAttack { radius, steps, rule }
    }

    /// The `l2` ball radius.
    pub fn radius(&self) -> f32 {
        self.radius
    }

    /// Number of ascent steps.
    pub fn steps(&self) -> usize {
        self.steps
    }
}

fn l2_norm(v: &[f32]) -> f32 {
    v.iter().map(|&x| x * x).sum::<f32>().sqrt()
}

impl Attack for EmbedAttack {
    fn name(&self) -> &'static str {
        match self.rule {
            EmbedStep::Sign => "EmbedSign",
            EmbedStep::L2 => "EmbedL2",
        }
    }

    fn threat_model(&self) -> ThreatModel {
        ThreatModel { surface: Surface::Embeddings, access: Access::WhiteBox }
    }

    fn budget(&self) -> Budget {
        Budget::EmbedL2(self.radius)
    }

    fn perturb(
        &self,
        target: &mut dyn TargetWorker,
        clean: &Tensor,
        goal: AttackGoal,
        _rng: &mut StdRng,
    ) -> Result<AdversarialBatch, AttackError> {
        assert_eq!(clean.rank(), 2, "embedding attack expects [n, d] feature rows");
        assert_eq!(clean.dims()[0], 1, "embedding attack perturbs one item per call");
        // Embedding attacks promote the bound item for the probe users; the
        // classifier-goal class has no role in feature space.
        let _ = goal;
        let emb = target.embedding().ok_or(AttackError::UnsupportedTarget {
            attack: match self.rule {
                EmbedStep::Sign => "EmbedSign",
                EmbedStep::L2 => "EmbedL2",
            },
            needs: "white-box embedding access",
        })?;
        let d = clean.dims()[1];
        assert_eq!(emb.dim(), d, "feature row width must match the model's feature_dim");
        let clean_row = clean.as_slice();
        let step = self.radius / self.steps as f32;
        let grad = emb.grad();
        taamr_obs::add(taamr_obs::Counter::EmbedAttackSteps, self.steps as u64);
        let mut delta = vec![0.0f32; d];
        for _ in 0..self.steps {
            match self.rule {
                EmbedStep::Sign => {
                    // sign(g)/√d has unit l2 norm (when no coordinate
                    // vanishes), so each step moves ≈ `step` in l2.
                    let scale = step / (d as f32).sqrt();
                    for (dv, &g) in delta.iter_mut().zip(&grad) {
                        *dv += scale * g.signum();
                    }
                }
                EmbedStep::L2 => {
                    let norm = l2_norm(&grad);
                    if norm > 1e-12 {
                        let scale = step / norm;
                        for (dv, &g) in delta.iter_mut().zip(&grad) {
                            *dv += scale * g;
                        }
                    }
                }
            }
            // Project back into the l2 ball after every step.
            let norm = l2_norm(&delta);
            if norm > self.radius {
                let scale = self.radius / norm;
                for dv in delta.iter_mut() {
                    *dv *= scale;
                }
            }
        }
        let adv_row: Vec<f32> =
            clean_row.iter().zip(&delta).map(|(&c, &dv)| c + dv).collect();
        let adv_score = emb.score(&adv_row);
        let success = adv_score > emb.clean_score();
        let data = Tensor::from_vec(adv_row, clean.dims()).expect("row keeps the input shape");
        let predictions = target.measure(&data).unwrap_or_default();
        Ok(AdversarialBatch { data, predictions, success: vec![success] })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WhiteBox;
    use taamr_tensor::seeded_rng;

    #[test]
    fn declares_embedding_threat_model_and_budget() {
        let s = EmbedAttack::sign(0.5, 5);
        assert_eq!(s.name(), "EmbedSign");
        assert_eq!(
            s.threat_model(),
            ThreatModel { surface: Surface::Embeddings, access: Access::WhiteBox }
        );
        assert_eq!(s.budget(), Budget::EmbedL2(0.5));
        assert_eq!(EmbedAttack::l2(0.25, 3).name(), "EmbedL2");
    }

    #[test]
    fn embedding_attack_on_pixel_target_is_a_typed_error() {
        let mut net = taamr_nn::TinyResNet::new(
            &taamr_nn::TinyResNetConfig::tiny_for_tests(4),
            &mut seeded_rng(0),
        );
        let clean = Tensor::from_vec(vec![0.5; 8], &[1, 8]).unwrap();
        let err = EmbedAttack::sign(0.5, 2)
            .perturb(&mut WhiteBox(&mut net), &clean, AttackGoal::Targeted(0), &mut seeded_rng(1))
            .expect_err("white-box pixel worker grants no embedding access");
        assert!(matches!(err, AttackError::UnsupportedTarget { attack: "EmbedSign", .. }));
    }

    #[test]
    #[should_panic(expected = "radius must be positive")]
    fn rejects_non_positive_radius() {
        EmbedAttack::l2(0.0, 3);
    }

    #[test]
    #[should_panic(expected = "step count must be positive")]
    fn rejects_zero_steps() {
        EmbedAttack::sign(0.5, 0);
    }
}
