//! Attack targets: what an attacker is allowed to touch.
//!
//! The [`Attack`](crate::Attack) trait is polymorphic over *threat models*:
//! a gradient attack needs white-box classifier access, a black-box attack
//! needs a score-query oracle, an embedding attack needs direct access to
//! one item's feature vector. [`AttackTarget`] packages a victim system
//! behind exactly those capability channels:
//!
//! * [`AttackTarget`] is the shared, read-only handle (`Sync`) the batch
//!   driver fans out across worker threads;
//! * [`TargetWorker`] is one thread's private working copy — model clones,
//!   query ledgers, memo caches — bound to one attacked item at a time via
//!   [`TargetWorker::bind`];
//! * a worker answers the capability probes [`TargetWorker::classifier`]
//!   (white-box gradients), [`TargetWorker::oracle`] (budgeted black-box
//!   score queries) and [`TargetWorker::embedding`] (direct feature access)
//!   with `Some` only for the access it actually grants, so an attack
//!   pointed at the wrong target fails with a typed
//!   [`AttackError::UnsupportedTarget`] instead of nonsense.
//!
//! Workers are constructed once per worker thread and re-bound per item, so
//! the per-item results are bitwise independent of thread count and
//! chunking — the same contract the old `par_attack_batch` enforced.

use std::ops::Range;

use taamr_nn::ImageClassifier;
use taamr_recsys::{ItemScoreOracle, VisualRecommender};
use taamr_tensor::Tensor;

use crate::AttackError;

/// A victim system that can hand out per-thread [`TargetWorker`]s.
///
/// Implementations are cheap shared views (references plus configuration);
/// all mutable state lives in the workers.
pub trait AttackTarget: Sync {
    /// Creates this thread's private working copy of the target.
    fn worker(&self) -> Box<dyn TargetWorker + '_>;
}

/// One worker thread's mutable view of an [`AttackTarget`].
///
/// A worker is bound to one attacked item at a time; the capability probes
/// return `None` for access kinds the threat model does not grant.
pub trait TargetWorker {
    /// Points the worker at the given attacked item. Oracle ledgers, memo
    /// caches and cached clean state are (re)initialised so results for an
    /// item never depend on which items the worker saw before.
    fn bind(&mut self, item: u64);

    /// White-box gradient access to the image classifier, if granted.
    fn classifier(&mut self) -> Option<&mut dyn ImageClassifier> {
        None
    }

    /// Budgeted black-box score-query access, if granted.
    fn oracle(&mut self) -> Option<&mut dyn ScoreOracle> {
        None
    }

    /// Direct access to the bound item's embedding, if granted.
    fn embedding(&mut self) -> Option<&mut dyn EmbeddingAccess> {
        None
    }

    /// Evaluation-side measurement of the perturbed payload: post-attack
    /// class predictions where a classifier is part of the system (pixel
    /// surfaces), `None` where there is nothing to classify (embedding
    /// surfaces). This is the *evaluator's* instrument, not the attacker's —
    /// black-box attackers never see these labels during their search.
    fn measure(&mut self, adv: &Tensor) -> Option<Vec<usize>> {
        let _ = adv;
        None
    }
}

/// Budgeted what-if score queries against the recommender for the bound
/// item — the only channel a black-box attacker gets.
pub trait ScoreOracle {
    /// Scores a candidate payload (an NCHW image for pixel surfaces) for
    /// the bound item: the mean predicted score over the target's probe
    /// users if the item's contents were replaced by `candidate`.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::QueryBudgetExceeded`] once the per-item query
    /// budget is spent. Repeat queries of bit-identical candidates are memo
    /// hits and stay free.
    fn query(&mut self, candidate: &Tensor) -> Result<f32, AttackError>;

    /// The bound item's score before any perturbation.
    fn clean_score(&self) -> f32;

    /// Fresh queries spent on the bound item so far.
    fn queries_used(&self) -> u64;

    /// The per-item query budget.
    fn query_budget(&self) -> u64;
}

/// White-box access to the bound item's feature vector in the recommender —
/// the channel of embedding-space attacks.
pub trait EmbeddingAccess {
    /// Feature dimension `D`.
    fn dim(&self) -> usize;

    /// The bound item's clean (pre-attack) feature vector.
    fn clean(&self) -> &[f32];

    /// The bound item's clean score (mean over the target's probe users).
    fn clean_score(&self) -> f32;

    /// Gradient of the probe-mean score with respect to the item's feature
    /// vector, evaluated at the clean features — the ascent direction that
    /// promotes the item.
    fn grad(&self) -> Vec<f32>;

    /// Probe-mean score of the bound item if its features were `feature`.
    ///
    /// # Panics
    ///
    /// Panics if `feature` has the wrong dimension.
    fn score(&mut self, feature: &[f32]) -> f32;
}

/// The minimal white-box target: a mutable borrow of one classifier.
///
/// This is the single-shot migration shim for callers that used to pass
/// `&mut dyn ImageClassifier` straight to `Attack::perturb`:
///
/// ```ignore
/// attack.perturb(&mut WhiteBox(&mut net), &x, goal, &mut rng)?
/// ```
///
/// It is a [`TargetWorker`] only (no [`AttackTarget`] fan-out): batch
/// drivers need a cloneable model, which [`WhiteBoxTarget`] provides.
pub struct WhiteBox<'a>(
    /// The attacked classifier.
    pub &'a mut dyn ImageClassifier,
);

impl TargetWorker for WhiteBox<'_> {
    fn bind(&mut self, _item: u64) {}

    fn classifier(&mut self) -> Option<&mut dyn ImageClassifier> {
        Some(self.0)
    }

    fn measure(&mut self, adv: &Tensor) -> Option<Vec<usize>> {
        Some(self.0.predict(adv))
    }
}

/// A white-box pixel-surface target whose workers clone the classifier —
/// the parallel-batch counterpart of [`WhiteBox`].
pub struct WhiteBoxTarget<'a, C: ImageClassifier + Clone + Sync> {
    model: &'a C,
}

impl<'a, C: ImageClassifier + Clone + Sync> WhiteBoxTarget<'a, C> {
    /// Wraps a classifier for parallel white-box attacks.
    pub fn new(model: &'a C) -> Self {
        WhiteBoxTarget { model }
    }
}

impl<C: ImageClassifier + Clone + Sync> AttackTarget for WhiteBoxTarget<'_, C> {
    fn worker(&self) -> Box<dyn TargetWorker + '_> {
        Box::new(WhiteBoxWorker { model: self.model.clone() })
    }
}

struct WhiteBoxWorker<C: ImageClassifier> {
    model: C,
}

impl<C: ImageClassifier> TargetWorker for WhiteBoxWorker<C> {
    fn bind(&mut self, _item: u64) {}

    fn classifier(&mut self) -> Option<&mut dyn ImageClassifier> {
        Some(&mut self.model)
    }

    fn measure(&mut self, adv: &Tensor) -> Option<Vec<usize>> {
        Some(self.model.predict(adv))
    }
}

/// `l2`-normalises one feature row in place — bit-for-bit the same
/// normalisation the pipeline applies to extracted features before they
/// enter the recommender, so oracle queries of the clean image land on the
/// memo-seeded clean feature.
fn l2_normalize(row: &mut [f32]) {
    let norm = row.iter().map(|v| v * v).sum::<f32>().sqrt();
    if norm > 1e-12 {
        for v in row.iter_mut() {
            *v /= norm;
        }
    }
}

/// A black-box pixel-surface target: the adversary submits candidate
/// *images* and observes only the recommender score the item would get —
/// the full deployed pipeline (feature extraction, normalisation, scoring)
/// is behind the query wall.
///
/// Per-item clean baselines are precomputed by the caller (through the
/// batched [`taamr_recsys::ScoringEngine`] path) and passed in, so oracle
/// construction never rebuilds scoring caches inside worker threads.
pub struct OracleTarget<'a, C, M>
where
    C: ImageClassifier + Clone + Sync,
    M: VisualRecommender + Clone + Sync,
{
    classifier: &'a C,
    model: &'a M,
    probe_users: Range<usize>,
    query_budget: u64,
    baselines: Vec<(u64, f32)>,
}

impl<'a, C, M> OracleTarget<'a, C, M>
where
    C: ImageClassifier + Clone + Sync,
    M: VisualRecommender + Clone + Sync,
{
    /// Builds a black-box target over `(classifier, model)` with the given
    /// probe-user range, per-item query budget, and precomputed per-item
    /// clean baselines `(item, clean_score)`.
    ///
    /// # Panics
    ///
    /// Panics if the probe range is empty or out of range for the model.
    pub fn new(
        classifier: &'a C,
        model: &'a M,
        probe_users: Range<usize>,
        query_budget: u64,
        baselines: Vec<(u64, f32)>,
    ) -> Self {
        assert!(
            probe_users.start < probe_users.end && probe_users.end <= model.num_users(),
            "probe users {probe_users:?} out of range for {} users",
            model.num_users()
        );
        OracleTarget { classifier, model, probe_users, query_budget, baselines }
    }
}

impl<C, M> AttackTarget for OracleTarget<'_, C, M>
where
    C: ImageClassifier + Clone + Sync,
    M: VisualRecommender + Clone + Sync,
{
    fn worker(&self) -> Box<dyn TargetWorker + '_> {
        Box::new(OracleWorker {
            classifier: self.classifier.clone(),
            model: self.model,
            probe_users: self.probe_users.clone(),
            query_budget: self.query_budget,
            baselines: &self.baselines,
            oracle: None,
        })
    }
}

struct OracleWorker<'a, C: ImageClassifier, M: VisualRecommender + Clone> {
    classifier: C,
    model: &'a M,
    probe_users: Range<usize>,
    query_budget: u64,
    baselines: &'a [(u64, f32)],
    oracle: Option<ItemScoreOracle<M>>,
}

impl<C: ImageClassifier, M: VisualRecommender + Clone> TargetWorker for OracleWorker<'_, C, M> {
    fn bind(&mut self, item: u64) {
        let clean_score = self
            .baselines
            .iter()
            .find(|(i, _)| *i == item)
            .map(|&(_, s)| s)
            .expect("a clean baseline must be precomputed for every attacked item");
        self.oracle = Some(ItemScoreOracle::with_baseline(
            self.model,
            item as usize,
            self.probe_users.clone(),
            self.query_budget,
            clean_score,
        ));
    }

    fn oracle(&mut self) -> Option<&mut dyn ScoreOracle> {
        self.oracle.as_ref()?;
        Some(self)
    }

    fn measure(&mut self, adv: &Tensor) -> Option<Vec<usize>> {
        Some(self.classifier.predict(adv))
    }
}

impl<C: ImageClassifier, M: VisualRecommender + Clone> ScoreOracle for OracleWorker<'_, C, M> {
    fn query(&mut self, candidate: &Tensor) -> Result<f32, AttackError> {
        let features = self.classifier.features(candidate);
        assert_eq!(features.dims()[0], 1, "oracle queries score one item at a time");
        let mut row = features.as_slice().to_vec();
        l2_normalize(&mut row);
        let oracle = self.oracle.as_mut().expect("bind() precedes oracle queries");
        Ok(oracle.query_feature(&row)?)
    }

    fn clean_score(&self) -> f32 {
        self.oracle.as_ref().expect("bind() precedes oracle queries").clean_score()
    }

    fn queries_used(&self) -> u64 {
        self.oracle.as_ref().expect("bind() precedes oracle queries").queries_used()
    }

    fn query_budget(&self) -> u64 {
        self.oracle.as_ref().expect("bind() precedes oracle queries").query_budget()
    }
}

/// A white-box embedding-surface target: workers operate on a sandbox clone
/// of the recommender and expose the bound item's feature vector, its
/// probe-mean score and the score gradient.
pub struct EmbedTarget<'a, M: VisualRecommender + Clone + Sync> {
    model: &'a M,
    probe_users: Range<usize>,
}

impl<'a, M: VisualRecommender + Clone + Sync> EmbedTarget<'a, M> {
    /// Builds an embedding-surface target with the given probe-user range.
    ///
    /// # Panics
    ///
    /// Panics if the probe range is empty or out of range for the model.
    pub fn new(model: &'a M, probe_users: Range<usize>) -> Self {
        assert!(
            probe_users.start < probe_users.end && probe_users.end <= model.num_users(),
            "probe users {probe_users:?} out of range for {} users",
            model.num_users()
        );
        EmbedTarget { model, probe_users }
    }
}

impl<M: VisualRecommender + Clone + Sync> AttackTarget for EmbedTarget<'_, M> {
    fn worker(&self) -> Box<dyn TargetWorker + '_> {
        Box::new(EmbedWorker {
            sandbox: self.model.clone(),
            probe_users: self.probe_users.clone(),
            item: None,
            clean: Vec::new(),
            clean_score: 0.0,
        })
    }
}

struct EmbedWorker<M: VisualRecommender + Clone> {
    sandbox: M,
    probe_users: Range<usize>,
    item: Option<usize>,
    clean: Vec<f32>,
    clean_score: f32,
}

impl<M: VisualRecommender + Clone> EmbedWorker<M> {
    fn probe_mean(&self, item: usize) -> f32 {
        let mut sum = 0.0f64;
        for u in self.probe_users.clone() {
            sum += f64::from(self.sandbox.score(u, item));
        }
        (sum / self.probe_users.len().max(1) as f64) as f32
    }
}

impl<M: VisualRecommender + Clone> TargetWorker for EmbedWorker<M> {
    fn bind(&mut self, item: u64) {
        // Undo the previous item's perturbation so a reused worker is
        // bitwise indistinguishable from a fresh one.
        if let Some(prev) = self.item {
            self.sandbox.set_item_feature(prev, &self.clean);
        }
        let item = item as usize;
        self.clean = self.sandbox.item_feature(item).to_vec();
        self.clean_score = self.probe_mean(item);
        self.item = Some(item);
    }

    fn embedding(&mut self) -> Option<&mut dyn EmbeddingAccess> {
        self.item?;
        Some(self)
    }
}

impl<M: VisualRecommender + Clone> EmbeddingAccess for EmbedWorker<M> {
    fn dim(&self) -> usize {
        self.sandbox.feature_dim()
    }

    fn clean(&self) -> &[f32] {
        &self.clean
    }

    fn clean_score(&self) -> f32 {
        self.clean_score
    }

    fn grad(&self) -> Vec<f32> {
        let item = self.item.expect("bind() precedes embedding access");
        let d = self.sandbox.feature_dim();
        let mut acc = vec![0.0f64; d];
        for u in self.probe_users.clone() {
            let g = self.sandbox.score_feature_grad(u, item);
            for (a, &gv) in acc.iter_mut().zip(&g) {
                *a += f64::from(gv);
            }
        }
        let n = self.probe_users.len().max(1) as f64;
        acc.iter().map(|&a| (a / n) as f32).collect()
    }

    fn score(&mut self, feature: &[f32]) -> f32 {
        let item = self.item.expect("bind() precedes embedding access");
        self.sandbox.set_item_feature(item, feature);
        self.probe_mean(item)
    }
}
