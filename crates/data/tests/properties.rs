//! Property-based tests of the data substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use taamr_data::kcore::{filter_cold_users, kcore_users_items};
use taamr_data::{leave_one_out, ImplicitDataset, TripletSampler};

/// Strategy: a random small implicit dataset.
fn dataset_strategy() -> impl Strategy<Value = ImplicitDataset> {
    (2usize..20, 3usize..25, 1usize..5).prop_flat_map(|(users, items, cats)| {
        (
            proptest::collection::vec(
                proptest::collection::vec(0usize..items, 0..12),
                users..=users,
            ),
            proptest::collection::vec(0usize..cats, items..=items),
            Just(cats),
        )
            .prop_map(|(user_items, item_cats, cats)| {
                ImplicitDataset::new(user_items, item_cats, cats)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn construction_dedups_and_sorts(d in dataset_strategy()) {
        for u in 0..d.num_users() {
            let items = d.user_items(u);
            prop_assert!(items.windows(2).all(|w| w[0] < w[1]), "not strictly sorted");
        }
    }

    #[test]
    fn category_sizes_partition_items(d in dataset_strategy()) {
        let sizes = d.category_sizes();
        prop_assert_eq!(sizes.iter().sum::<usize>(), d.num_items());
        for (c, &size) in sizes.iter().enumerate().take(d.num_categories()) {
            prop_assert_eq!(d.items_of_category(c).len(), size);
        }
    }

    #[test]
    fn cold_user_filter_keeps_only_warm(d in dataset_strategy(), k in 1usize..4) {
        let filtered = filter_cold_users(&d, k);
        for u in 0..filtered.num_users() {
            prop_assert!(filtered.user_items(u).len() >= k);
        }
        // No interactions invented.
        prop_assert!(filtered.num_interactions() <= d.num_interactions());
        prop_assert_eq!(filtered.num_items(), d.num_items());
    }

    #[test]
    fn kcore_fixpoint_invariant(d in dataset_strategy(), k in 1usize..4) {
        let (core, mapping) = kcore_users_items(&d, k);
        for u in 0..core.num_users() {
            prop_assert!(core.user_items(u).len() >= k);
        }
        let mut degree = vec![0usize; core.num_items()];
        for (_, i) in core.iter_interactions() {
            degree[i] += 1;
        }
        prop_assert!(degree.iter().all(|&dg| dg >= k));
        // Mapping is strictly increasing and in range.
        prop_assert!(mapping.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(mapping.iter().all(|&old| old < d.num_items()));
        // Categories survive the re-index.
        for (new, &old) in mapping.iter().enumerate() {
            prop_assert_eq!(core.item_category(new), d.item_category(old));
        }
    }

    #[test]
    fn leave_one_out_partitions_interactions(d in dataset_strategy(), seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let split = leave_one_out(&d, &mut rng);
        prop_assert_eq!(
            split.train.num_interactions() + split.test.len(),
            d.num_interactions()
        );
        for &(u, i) in &split.test {
            prop_assert!(d.has_interaction(u, i));
            prop_assert!(!split.train.has_interaction(u, i));
        }
        // Every user with ≥2 interactions contributes exactly one test item.
        let eligible = (0..d.num_users()).filter(|&u| d.user_items(u).len() >= 2).count();
        prop_assert_eq!(split.test.len(), eligible);
    }

    #[test]
    fn triplet_sampler_respects_interactions(d in dataset_strategy(), seed in 0u64..100) {
        let has_any = (0..d.num_users()).any(|u| !d.user_items(u).is_empty());
        let saturating = (0..d.num_users()).any(|u| d.user_items(u).len() == d.num_items());
        prop_assume!(has_any && !saturating);
        let sampler = TripletSampler::new(&d);
        let mut rng = StdRng::seed_from_u64(seed);
        for t in sampler.sample_many(50, &mut rng) {
            prop_assert!(d.has_interaction(t.user, t.positive));
            prop_assert!(!d.has_interaction(t.user, t.negative));
        }
    }
}
