//! K-core preprocessing.
//!
//! The paper "considered all the users with at least five interactions
//! (|I_u⁺| ≥ 5) to discard cold-users". [`filter_cold_users`] implements
//! exactly that; [`kcore_users_items`] additionally iterates a user/item
//! k-core to a fixpoint for experiments that want a denser graph.

use crate::ImplicitDataset;

/// Drops users with fewer than `k` interactions. Item ids are preserved.
///
/// # Panics
///
/// Panics if `k` is zero.
pub fn filter_cold_users(dataset: &ImplicitDataset, k: usize) -> ImplicitDataset {
    assert!(k > 0, "k must be positive");
    let kept: Vec<Vec<usize>> = (0..dataset.num_users())
        .map(|u| dataset.user_items(u).to_vec())
        .filter(|items| items.len() >= k)
        .collect();
    ImplicitDataset::new(kept, dataset.item_categories().to_vec(), dataset.num_categories())
}

/// Iterated user/item k-core: repeatedly drops users with `< k` interactions
/// and items with `< k` interacting users until both constraints hold.
/// Surviving items are re-indexed densely; the mapping from new to old item
/// ids is returned alongside the filtered dataset.
///
/// # Panics
///
/// Panics if `k` is zero.
pub fn kcore_users_items(dataset: &ImplicitDataset, k: usize) -> (ImplicitDataset, Vec<usize>) {
    assert!(k > 0, "k must be positive");
    let mut user_items: Vec<Vec<usize>> =
        (0..dataset.num_users()).map(|u| dataset.user_items(u).to_vec()).collect();
    let num_items = dataset.num_items();
    let mut item_alive = vec![true; num_items];
    let mut user_alive = vec![true; user_items.len()];

    loop {
        let mut changed = false;
        // Drop cold users.
        for (u, items) in user_items.iter().enumerate() {
            if user_alive[u] && items.iter().filter(|&&i| item_alive[i]).count() < k {
                user_alive[u] = false;
                changed = true;
            }
        }
        // Count item degrees over alive users.
        let mut degree = vec![0usize; num_items];
        for (u, items) in user_items.iter().enumerate() {
            if !user_alive[u] {
                continue;
            }
            for &i in items {
                if item_alive[i] {
                    degree[i] += 1;
                }
            }
        }
        for i in 0..num_items {
            if item_alive[i] && degree[i] < k {
                item_alive[i] = false;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        // Remove dead items from user lists so the user check sees them gone.
        for items in &mut user_items {
            items.retain(|&i| item_alive[i]);
        }
    }

    // Re-index items densely.
    let mut new_to_old = Vec::new();
    let mut old_to_new = vec![usize::MAX; num_items];
    for (old, &alive) in item_alive.iter().enumerate() {
        if alive {
            old_to_new[old] = new_to_old.len();
            new_to_old.push(old);
        }
    }
    let new_categories: Vec<usize> =
        new_to_old.iter().map(|&old| dataset.item_category(old)).collect();
    let new_user_items: Vec<Vec<usize>> = user_items
        .iter()
        .enumerate()
        .filter(|(u, _)| user_alive[*u])
        .map(|(_, items)| {
            items.iter().filter(|&&i| item_alive[i]).map(|&i| old_to_new[i]).collect()
        })
        .collect();
    (
        ImplicitDataset::new(new_user_items, new_categories, dataset.num_categories()),
        new_to_old,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> ImplicitDataset {
        // user 0: 3 items, user 1: 2 items, user 2: 1 item.
        ImplicitDataset::new(
            vec![vec![0, 1, 2], vec![0, 1], vec![2]],
            vec![0, 0, 0],
            1,
        )
    }

    #[test]
    fn filter_cold_users_keeps_warm_ones() {
        let d = filter_cold_users(&toy(), 2);
        assert_eq!(d.num_users(), 2);
        assert_eq!(d.num_items(), 3); // items untouched
        assert_eq!(d.user_items(0), &[0, 1, 2]);
    }

    #[test]
    fn filter_with_k_one_keeps_everyone_with_any_interaction() {
        let d = filter_cold_users(&toy(), 1);
        assert_eq!(d.num_users(), 3);
    }

    #[test]
    fn kcore_reaches_fixpoint() {
        // item 2 has degree 2, items 0,1 degree 2; user 2 has 1 item.
        let (d, mapping) = kcore_users_items(&toy(), 2);
        // user 2 dies; then item 2 has degree 1 and dies; users 0,1 keep {0,1}.
        assert_eq!(d.num_users(), 2);
        assert_eq!(d.num_items(), 2);
        assert_eq!(mapping, vec![0, 1]);
        for u in 0..d.num_users() {
            assert!(d.user_items(u).len() >= 2);
        }
    }

    #[test]
    fn kcore_invariant_holds_property() {
        // Random-ish larger instance, verify the k-core invariant.
        let mut user_items = Vec::new();
        for u in 0..30usize {
            let items: Vec<usize> = (0..(u % 7)).map(|j| (u * 3 + j * 5) % 20).collect();
            user_items.push(items);
        }
        let d = ImplicitDataset::new(user_items, vec![0; 20], 1);
        let (core, _) = kcore_users_items(&d, 3);
        for u in 0..core.num_users() {
            assert!(core.user_items(u).len() >= 3, "user {u} below core");
        }
        let mut degree = vec![0usize; core.num_items()];
        for (_, i) in core.iter_interactions() {
            degree[i] += 1;
        }
        assert!(degree.iter().all(|&dg| dg >= 3), "item below core: {degree:?}");
    }

    #[test]
    fn kcore_can_empty_a_sparse_dataset() {
        let d = ImplicitDataset::new(vec![vec![0], vec![1]], vec![0, 0], 1);
        let (core, mapping) = kcore_users_items(&d, 2);
        assert_eq!(core.num_users(), 0);
        assert_eq!(core.num_items(), 0);
        assert!(mapping.is_empty());
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        filter_cold_users(&toy(), 0);
    }
}
