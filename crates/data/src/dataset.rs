//! Core implicit-feedback dataset representation.

use std::collections::HashSet;

use crate::DatasetStats;

/// An implicit-feedback dataset: users, items with category labels, and
/// 0/1-valued interactions (the paper's user–item feedback matrix `S`).
///
/// Interactions are stored per-user as sorted item-id vectors, which is the
/// access pattern both training (triplet sampling) and evaluation (top-N with
/// seen-item exclusion) need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImplicitDataset {
    user_items: Vec<Vec<usize>>,
    item_categories: Vec<usize>,
    num_categories: usize,
}

impl ImplicitDataset {
    /// Builds a dataset from per-user interaction lists and item category
    /// labels.
    ///
    /// Item lists are deduplicated and sorted.
    ///
    /// # Panics
    ///
    /// Panics if any referenced item id is out of range of
    /// `item_categories`, or any category id is `>= num_categories`.
    pub fn new(
        mut user_items: Vec<Vec<usize>>,
        item_categories: Vec<usize>,
        num_categories: usize,
    ) -> Self {
        let num_items = item_categories.len();
        for items in &mut user_items {
            items.sort_unstable();
            items.dedup();
            if let Some(&max) = items.last() {
                assert!(max < num_items, "item id {max} out of range ({num_items} items)");
            }
        }
        for (i, &c) in item_categories.iter().enumerate() {
            assert!(c < num_categories, "item {i} has out-of-range category {c}");
        }
        ImplicitDataset { user_items, item_categories, num_categories }
    }

    /// Number of users.
    pub fn num_users(&self) -> usize {
        self.user_items.len()
    }

    /// Number of items.
    pub fn num_items(&self) -> usize {
        self.item_categories.len()
    }

    /// Number of categories.
    pub fn num_categories(&self) -> usize {
        self.num_categories
    }

    /// Total number of interactions `|S|`.
    pub fn num_interactions(&self) -> usize {
        self.user_items.iter().map(|v| v.len()).sum()
    }

    /// The sorted item ids user `u` interacted with (`I_u⁺`).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn user_items(&self, u: usize) -> &[usize] {
        &self.user_items[u]
    }

    /// Whether user `u` interacted with item `i`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn has_interaction(&self, u: usize, i: usize) -> bool {
        self.user_items[u].binary_search(&i).is_ok()
    }

    /// Category id of item `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn item_category(&self, i: usize) -> usize {
        self.item_categories[i]
    }

    /// All item category labels, indexed by item id.
    pub fn item_categories(&self) -> &[usize] {
        &self.item_categories
    }

    /// Item ids belonging to `category` (the paper's `I_c`).
    pub fn items_of_category(&self, category: usize) -> Vec<usize> {
        self.item_categories
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == category)
            .map(|(i, _)| i)
            .collect()
    }

    /// Item ids of `category` as a set, for metric computation.
    pub fn category_item_set(&self, category: usize) -> HashSet<usize> {
        self.items_of_category(category).into_iter().collect()
    }

    /// Per-category item counts.
    pub fn category_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_categories];
        for &c in &self.item_categories {
            sizes[c] += 1;
        }
        sizes
    }

    /// Summary statistics (Table I row).
    pub fn stats(&self, name: &str) -> DatasetStats {
        DatasetStats {
            name: name.to_owned(),
            num_users: self.num_users(),
            num_items: self.num_items(),
            num_interactions: self.num_interactions(),
        }
    }

    /// Iterates over all `(user, item)` interaction pairs.
    pub fn iter_interactions(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.user_items
            .iter()
            .enumerate()
            .flat_map(|(u, items)| items.iter().map(move |&i| (u, i)))
    }

    /// Consumes the dataset, returning `(user_items, item_categories)`.
    pub fn into_parts(self) -> (Vec<Vec<usize>>, Vec<usize>) {
        (self.user_items, self.item_categories)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> ImplicitDataset {
        ImplicitDataset::new(
            vec![vec![2, 0, 2, 1], vec![3], vec![]],
            vec![0, 0, 1, 2],
            3,
        )
    }

    #[test]
    fn dedup_and_sort_on_construction() {
        let d = toy();
        assert_eq!(d.user_items(0), &[0, 1, 2]);
        assert_eq!(d.num_interactions(), 4);
        assert_eq!(d.num_users(), 3);
        assert_eq!(d.num_items(), 4);
    }

    #[test]
    fn membership_queries() {
        let d = toy();
        assert!(d.has_interaction(0, 1));
        assert!(!d.has_interaction(1, 1));
        assert!(!d.has_interaction(2, 0));
    }

    #[test]
    fn category_queries() {
        let d = toy();
        assert_eq!(d.items_of_category(0), vec![0, 1]);
        assert_eq!(d.items_of_category(1), vec![2]);
        assert_eq!(d.category_sizes(), vec![2, 1, 1]);
        assert!(d.category_item_set(2).contains(&3));
    }

    #[test]
    fn interaction_iterator_covers_all() {
        let d = toy();
        let pairs: Vec<(usize, usize)> = d.iter_interactions().collect();
        assert_eq!(pairs, vec![(0, 0), (0, 1), (0, 2), (1, 3)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_item_ids() {
        ImplicitDataset::new(vec![vec![5]], vec![0, 0], 1);
    }

    #[test]
    #[should_panic(expected = "out-of-range category")]
    fn rejects_bad_categories() {
        ImplicitDataset::new(vec![vec![0]], vec![3], 2);
    }

    #[test]
    fn stats_row() {
        let s = toy().stats("Toy");
        assert_eq!(s.num_users, 3);
        assert_eq!(s.num_items, 4);
        assert_eq!(s.num_interactions, 4);
    }
}
