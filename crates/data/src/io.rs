//! Plain-text dataset persistence.
//!
//! A small line-oriented format so generated datasets can be archived,
//! diffed, and re-loaded bit-for-bit — useful when an experiment should be
//! re-run against the *exact* interactions of a previous run rather than
//! regenerated from a seed (e.g. across versions that change the generator).
//!
//! ```text
//! taamr-dataset v1
//! users <num_users>
//! items <num_items>
//! categories <num_categories>
//! itemcats <c_0> <c_1> … <c_{items−1}>
//! interactions <count>
//! <user> <item>
//! …
//! ```

use std::io::{self, BufRead, BufReader, Read, Write};

use crate::ImplicitDataset;

/// Largest accepted value for any count field (`users`, `items`,
/// `categories`, `interactions`) in a dataset file.
///
/// The biggest paper dataset has ~26k users and ~85k items; this cap is four
/// orders of magnitude above that, so it only ever rejects corrupt or
/// hostile headers — a declared count drives an up-front allocation, and
/// without a bound a one-line file could request terabytes.
pub const MAX_DECLARED_COUNT: usize = 1 << 27;

/// Writes `dataset` in the `taamr-dataset v1` text format.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_dataset<W: Write>(dataset: &ImplicitDataset, mut writer: W) -> io::Result<()> {
    writeln!(writer, "taamr-dataset v1")?;
    writeln!(writer, "users {}", dataset.num_users())?;
    writeln!(writer, "items {}", dataset.num_items())?;
    writeln!(writer, "categories {}", dataset.num_categories())?;
    write!(writer, "itemcats")?;
    for i in 0..dataset.num_items() {
        write!(writer, " {}", dataset.item_category(i))?;
    }
    writeln!(writer)?;
    writeln!(writer, "interactions {}", dataset.num_interactions())?;
    for (u, i) in dataset.iter_interactions() {
        writeln!(writer, "{u} {i}")?;
    }
    Ok(())
}

/// Reads a dataset written by [`write_dataset`].
///
/// # Errors
///
/// Returns `InvalidData` errors for version/field mismatches, out-of-range
/// ids, counts above [`MAX_DECLARED_COUNT`], or truncated files. Malformed
/// input never panics and never drives an unbounded allocation.
pub fn read_dataset<R: Read>(reader: R) -> io::Result<ImplicitDataset> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_owned());
    let mut lines = BufReader::new(reader).lines();
    let mut next = |what: &str| -> io::Result<String> {
        lines
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, format!("missing {what}")))?
    };

    if next("header")? != "taamr-dataset v1" {
        return Err(bad("unrecognised header"));
    }
    let field = |line: String, name: &str| -> io::Result<usize> {
        let rest = line
            .strip_prefix(name)
            .ok_or_else(|| bad(&format!("expected `{name}` line")))?;
        let value: usize =
            rest.trim().parse().map_err(|_| bad(&format!("bad `{name}` value")))?;
        if value > MAX_DECLARED_COUNT {
            return Err(bad(&format!("`{name}` count exceeds the supported maximum")));
        }
        Ok(value)
    };
    let num_users = field(next("users")?, "users")?;
    let num_items = field(next("items")?, "items")?;
    let num_categories = field(next("categories")?, "categories")?;

    let cats_line = next("itemcats")?;
    let cats_rest =
        cats_line.strip_prefix("itemcats").ok_or_else(|| bad("expected `itemcats` line"))?;
    let item_categories: Vec<usize> = cats_rest
        .split_whitespace()
        .map(|t| t.parse().map_err(|_| bad("bad category id")))
        .collect::<io::Result<_>>()?;
    if item_categories.len() != num_items {
        return Err(bad("itemcats length differs from the item count"));
    }
    if item_categories.iter().any(|&c| c >= num_categories) {
        return Err(bad("category id out of range"));
    }

    let count = field(next("interactions")?, "interactions")?;
    let mut user_items = vec![Vec::new(); num_users];
    for _ in 0..count {
        let line = next("interaction row")?;
        let mut parts = line.split_whitespace();
        let u: usize = parts
            .next()
            .ok_or_else(|| bad("missing user id"))?
            .parse()
            .map_err(|_| bad("bad user id"))?;
        let i: usize = parts
            .next()
            .ok_or_else(|| bad("missing item id"))?
            .parse()
            .map_err(|_| bad("bad item id"))?;
        if u >= num_users || i >= num_items {
            return Err(bad("interaction id out of range"));
        }
        user_items[u].push(i);
    }
    Ok(ImplicitDataset::new(user_items, item_categories, num_categories))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SyntheticConfig, SyntheticDataset};

    #[test]
    fn round_trip_is_lossless() {
        let original = SyntheticDataset::generate(&SyntheticConfig::tiny_for_tests()).dataset;
        let mut buf = Vec::new();
        write_dataset(&original, &mut buf).unwrap();
        let back = read_dataset(buf.as_slice()).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn format_is_line_oriented_and_versioned() {
        let d = ImplicitDataset::new(vec![vec![0, 1], vec![1]], vec![0, 1], 2);
        let mut buf = Vec::new();
        write_dataset(&d, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("taamr-dataset v1\n"));
        assert!(text.contains("users 2"));
        assert!(text.contains("items 2"));
        assert!(text.contains("interactions 3"));
        assert!(text.contains("itemcats 0 1"));
    }

    #[test]
    fn rejects_malformed_inputs() {
        let cases: Vec<&[u8]> = vec![
            b"",
            b"wrong header\n",
            b"taamr-dataset v1\nusers x\n",
            b"taamr-dataset v1\nusers 1\nitems 1\ncategories 1\nitemcats 5\ninteractions 0\n",
            b"taamr-dataset v1\nusers 1\nitems 2\ncategories 1\nitemcats 0\ninteractions 0\n",
            b"taamr-dataset v1\nusers 1\nitems 1\ncategories 1\nitemcats 0\ninteractions 1\n9 0\n",
            b"taamr-dataset v1\nusers 1\nitems 1\ncategories 1\nitemcats 0\ninteractions 2\n0 0\n",
        ];
        for (k, case) in cases.into_iter().enumerate() {
            assert!(read_dataset(case).is_err(), "case {k} should fail");
        }
    }

    #[test]
    fn rejects_hostile_counts_without_allocating() {
        // A declared user count above the cap must fail before `vec![...; n]`.
        let huge = format!("taamr-dataset v1\nusers {}\n", MAX_DECLARED_COUNT + 1);
        assert!(read_dataset(huge.as_bytes()).is_err());
        let huge_items = format!(
            "taamr-dataset v1\nusers 1\nitems {}\ncategories 1\n",
            usize::MAX
        );
        assert!(read_dataset(huge_items.as_bytes()).is_err());
        let huge_count = format!(
            "taamr-dataset v1\nusers 1\nitems 1\ncategories 1\nitemcats 0\ninteractions {}\n",
            MAX_DECLARED_COUNT + 1
        );
        assert!(read_dataset(huge_count.as_bytes()).is_err());
        // The boundary itself is about declared counts, not real data: a
        // file that declares a legal count but is truncated still errors.
        let truncated = "taamr-dataset v1\nusers 2\nitems 1\ncategories 1\nitemcats 0\ninteractions 3\n0 0\n";
        assert!(read_dataset(truncated.as_bytes()).is_err());
    }

    #[test]
    fn empty_interactions_round_trip() {
        let d = ImplicitDataset::new(vec![vec![], vec![]], vec![0], 1);
        let mut buf = Vec::new();
        write_dataset(&d, &mut buf).unwrap();
        let back = read_dataset(buf.as_slice()).unwrap();
        assert_eq!(back.num_interactions(), 0);
        assert_eq!(back.num_users(), 2);
    }
}
