//! Dataset statistics (Table I).

use std::fmt;

use serde::{Deserialize, Serialize};

/// A Table-I-style dataset summary: `|U|`, `|I|`, `|S|`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Dataset display name (e.g. "Amazon Men (synthetic)").
    pub name: String,
    /// Number of users `|U|`.
    pub num_users: usize,
    /// Number of items `|I|`.
    pub num_items: usize,
    /// Number of interactions `|S|`.
    pub num_interactions: usize,
}

impl DatasetStats {
    /// Interaction matrix density `|S| / (|U|·|I|)`.
    pub fn density(&self) -> f64 {
        let cells = self.num_users as f64 * self.num_items as f64;
        if cells == 0.0 {
            0.0
        } else {
            self.num_interactions as f64 / cells
        }
    }

    /// Mean interactions per user.
    pub fn interactions_per_user(&self) -> f64 {
        if self.num_users == 0 {
            0.0
        } else {
            self.num_interactions as f64 / self.num_users as f64
        }
    }
}

impl fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<24} |U| = {:>8} |I| = {:>8} |S| = {:>9} (density {:.5}%)",
            self.name,
            self.num_users,
            self.num_items,
            self.num_interactions,
            self.density() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let s = DatasetStats {
            name: "X".into(),
            num_users: 10,
            num_items: 20,
            num_interactions: 50,
        };
        assert!((s.density() - 0.25).abs() < 1e-12);
        assert!((s.interactions_per_user() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_dataset_densities_are_zero() {
        let s =
            DatasetStats { name: "E".into(), num_users: 0, num_items: 0, num_interactions: 0 };
        assert_eq!(s.density(), 0.0);
        assert_eq!(s.interactions_per_user(), 0.0);
    }

    #[test]
    fn display_contains_all_counts() {
        let s = DatasetStats {
            name: "Amazon Men".into(),
            num_users: 26155,
            num_items: 82630,
            num_interactions: 193365,
        };
        let line = s.to_string();
        assert!(line.contains("26155") && line.contains("82630") && line.contains("193365"));
    }
}
