//! BPR triplet sampling.

use rand::Rng;

use crate::ImplicitDataset;

/// A BPR training triplet `(u, i, j)`: user `u` interacted with `i` and not
/// with `j`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Triplet {
    /// User id.
    pub user: usize,
    /// Positive (interacted) item id.
    pub positive: usize,
    /// Negative (non-interacted) item id.
    pub negative: usize,
}

/// Uniform BPR triplet sampler over a dataset.
///
/// Sampling follows the standard BPR scheme: a uniform user among users with
/// at least one interaction, a uniform positive from `I_u⁺`, and a uniform
/// negative from `I \ I_u⁺` by rejection.
#[derive(Debug, Clone)]
pub struct TripletSampler<'a> {
    dataset: &'a ImplicitDataset,
    eligible_users: Vec<usize>,
}

impl<'a> TripletSampler<'a> {
    /// Creates a sampler.
    ///
    /// # Panics
    ///
    /// Panics if no user has an interaction, or if any user has interacted
    /// with every item (making negative sampling impossible).
    pub fn new(dataset: &'a ImplicitDataset) -> Self {
        let eligible_users: Vec<usize> = (0..dataset.num_users())
            .filter(|&u| !dataset.user_items(u).is_empty())
            .collect();
        assert!(!eligible_users.is_empty(), "dataset has no interactions");
        assert!(
            eligible_users.iter().all(|&u| dataset.user_items(u).len() < dataset.num_items()),
            "a user has consumed every item; negatives cannot be sampled"
        );
        TripletSampler { dataset, eligible_users }
    }

    /// Number of users the sampler can draw from.
    pub fn num_eligible_users(&self) -> usize {
        self.eligible_users.len()
    }

    /// Draws one triplet.
    pub fn sample(&self, rng: &mut impl Rng) -> Triplet {
        taamr_obs::incr(taamr_obs::Counter::SamplerDraws);
        let user = self.eligible_users[rng.gen_range(0..self.eligible_users.len())];
        let items = self.dataset.user_items(user);
        let positive = items[rng.gen_range(0..items.len())];
        let negative = loop {
            let j = rng.gen_range(0..self.dataset.num_items());
            if !self.dataset.has_interaction(user, j) {
                break j;
            }
        };
        Triplet { user, positive, negative }
    }

    /// Draws `count` triplets into a vector.
    pub fn sample_many(&self, count: usize, rng: &mut impl Rng) -> Vec<Triplet> {
        (0..count).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> ImplicitDataset {
        ImplicitDataset::new(
            vec![vec![0, 1], vec![2], vec![]],
            vec![0, 0, 0, 0, 0],
            1,
        )
    }

    #[test]
    fn triplets_satisfy_bpr_invariants() {
        let d = toy();
        let sampler = TripletSampler::new(&d);
        let mut rng = StdRng::seed_from_u64(0);
        for t in sampler.sample_many(200, &mut rng) {
            assert!(d.has_interaction(t.user, t.positive));
            assert!(!d.has_interaction(t.user, t.negative));
            assert_ne!(t.positive, t.negative);
        }
    }

    #[test]
    fn users_without_interactions_are_never_sampled() {
        let d = toy();
        let sampler = TripletSampler::new(&d);
        assert_eq!(sampler.num_eligible_users(), 2);
        let mut rng = StdRng::seed_from_u64(1);
        for t in sampler.sample_many(100, &mut rng) {
            assert_ne!(t.user, 2);
        }
    }

    #[test]
    fn sampling_is_deterministic_under_seed() {
        let d = toy();
        let sampler = TripletSampler::new(&d);
        let a = sampler.sample_many(20, &mut StdRng::seed_from_u64(2));
        let b = sampler.sample_many(20, &mut StdRng::seed_from_u64(2));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "no interactions")]
    fn empty_dataset_panics() {
        let d = ImplicitDataset::new(vec![vec![], vec![]], vec![0], 1);
        TripletSampler::new(&d);
    }

    #[test]
    #[should_panic(expected = "consumed every item")]
    fn saturated_user_panics() {
        let d = ImplicitDataset::new(vec![vec![0]], vec![0], 1);
        TripletSampler::new(&d);
    }
}
