//! Train/test splitting.

use rand::Rng;

use crate::ImplicitDataset;

/// A leave-one-out split: one held-out test item per eligible user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrainTestSplit {
    /// Training interactions (the input dataset minus the held-out items).
    pub train: ImplicitDataset,
    /// Held-out `(user, item)` pairs; users with a single interaction are
    /// not split and do not appear here.
    pub test: Vec<(usize, usize)>,
}

/// Splits a dataset leave-one-out: for every user with at least two
/// interactions, one uniformly random interaction is moved to the test set.
///
/// # Example
///
/// ```
/// use taamr_data::{leave_one_out, ImplicitDataset};
/// use rand::SeedableRng;
///
/// let d = ImplicitDataset::new(vec![vec![0, 1, 2]], vec![0, 0, 0], 1);
/// let split = leave_one_out(&d, &mut rand::rngs::StdRng::seed_from_u64(0));
/// assert_eq!(split.train.user_items(0).len(), 2);
/// assert_eq!(split.test.len(), 1);
/// ```
pub fn leave_one_out(dataset: &ImplicitDataset, rng: &mut impl Rng) -> TrainTestSplit {
    let mut train_lists = Vec::with_capacity(dataset.num_users());
    let mut test = Vec::new();
    for u in 0..dataset.num_users() {
        let items = dataset.user_items(u);
        if items.len() < 2 {
            train_lists.push(items.to_vec());
            continue;
        }
        let held = items[rng.gen_range(0..items.len())];
        test.push((u, held));
        train_lists.push(items.iter().copied().filter(|&i| i != held).collect());
    }
    TrainTestSplit {
        train: ImplicitDataset::new(
            train_lists,
            dataset.item_categories().to_vec(),
            dataset.num_categories(),
        ),
        test,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> ImplicitDataset {
        ImplicitDataset::new(
            vec![vec![0, 1, 2, 3], vec![4, 5], vec![6]],
            vec![0; 7],
            1,
        )
    }

    #[test]
    fn holds_out_exactly_one_per_eligible_user() {
        let mut rng = StdRng::seed_from_u64(3);
        let split = leave_one_out(&toy(), &mut rng);
        assert_eq!(split.test.len(), 2); // user 2 has one interaction
        assert_eq!(split.train.user_items(0).len(), 3);
        assert_eq!(split.train.user_items(1).len(), 1);
        assert_eq!(split.train.user_items(2).len(), 1);
    }

    #[test]
    fn held_out_item_is_not_in_train() {
        let mut rng = StdRng::seed_from_u64(4);
        let split = leave_one_out(&toy(), &mut rng);
        for &(u, i) in &split.test {
            assert!(!split.train.has_interaction(u, i));
        }
    }

    #[test]
    fn union_of_train_and_test_recovers_original() {
        let d = toy();
        let mut rng = StdRng::seed_from_u64(5);
        let split = leave_one_out(&d, &mut rng);
        let train_count = split.train.num_interactions();
        assert_eq!(train_count + split.test.len(), d.num_interactions());
        for &(u, i) in &split.test {
            assert!(d.has_interaction(u, i));
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let d = toy();
        let a = leave_one_out(&d, &mut StdRng::seed_from_u64(6));
        let b = leave_one_out(&d, &mut StdRng::seed_from_u64(6));
        assert_eq!(a.test, b.test);
        assert_eq!(a.train, b.train);
    }
}
