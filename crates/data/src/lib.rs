//! Synthetic implicit-feedback datasets: the reproduction's stand-in for the
//! Amazon Men / Amazon Women interaction data.
//!
//! The paper's datasets cannot be redistributed, so this crate generates
//! synthetic user–item feedback with the statistical properties the TAaMR
//! pipeline depends on:
//!
//! * **Zipf-skewed item and category popularity** — some categories are
//!   organically much more recommended than others, which is the premise of
//!   the attack (perturb a *low*-recommended category towards a *highly*
//!   recommended one);
//! * **per-user category affinity** — users concentrate on a few categories,
//!   so collaborative filtering (and category-correlated visual features)
//!   carry signal;
//! * **5-core preprocessing** — like the paper, users with fewer than five
//!   interactions are discarded ([`kcore`]);
//! * **leave-one-out splitting** ([`split`]) and **BPR triplet sampling**
//!   ([`TripletSampler`]) for training pairwise rankers.
//!
//! Two ready-made profiles, [`SyntheticConfig::amazon_men_like`] and
//! [`SyntheticConfig::amazon_women_like`], are shaped like the paper's
//! Table I datasets scaled down ~20× to single-core laptop size (the same
//! interactions-per-user ratio, the same relative size ordering).
//!
//! # Example
//!
//! ```
//! use taamr_data::{SyntheticConfig, SyntheticDataset};
//!
//! let generated = SyntheticDataset::generate(&SyntheticConfig::tiny_for_tests());
//! let dataset = &generated.dataset;
//! assert!(dataset.num_users() > 0);
//! // 5-core: every surviving user has at least 5 interactions.
//! assert!((0..dataset.num_users()).all(|u| dataset.user_items(u).len() >= 5));
//! ```

#![deny(missing_docs)]

mod dataset;
mod generator;
pub mod io;
pub mod kcore;
mod sampler;
pub mod split;
mod stats;

pub use dataset::ImplicitDataset;
pub use generator::{SyntheticConfig, SyntheticDataset};
pub use sampler::{Triplet, TripletSampler};
pub use split::{leave_one_out, TrainTestSplit};
pub use stats::DatasetStats;
