//! Synthetic dataset generation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, LogNormal};
use serde::{Deserialize, Serialize};

use crate::kcore::filter_cold_users;
use crate::ImplicitDataset;

/// Configuration of the synthetic feedback generator.
///
/// The generative model:
///
/// 1. **Categories** get popularity weights `w_c ∝ (rank+1)^(-category_skew)`
///    under a fixed random permutation of ranks, so which category is popular
///    is seed-dependent but the skew shape is Zipf.
/// 2. **Items** are assigned to categories proportionally to `w_c`, and get
///    within-category popularity `∝ (rank+1)^(-item_skew)`.
/// 3. **Users** draw a sparse category-affinity vector (a few preferred
///    categories) and an activity level (log-normal, shifted so the 5-core
///    filter keeps most users).
/// 4. **Interactions** are sampled per user: pick a category from the
///    user-affinity × popularity mixture, then an item by popularity within
///    the category; duplicates are discarded.
/// 5. The result is passed through the paper's 5-core user filter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// Display name for Table I.
    pub name: String,
    /// Users to generate (before 5-core filtering).
    pub num_users: usize,
    /// Items to generate.
    pub num_items: usize,
    /// Number of product categories.
    pub num_categories: usize,
    /// Mean interactions per user (the paper's datasets have ≈ 7.4).
    pub mean_interactions_per_user: f64,
    /// Zipf exponent for category popularity (higher = more skew).
    pub category_skew: f64,
    /// Zipf exponent for within-category item popularity.
    pub item_skew: f64,
    /// How many categories each user is concentrated on.
    pub user_focus: usize,
    /// Weight of a user's focused categories vs the global distribution.
    pub affinity_strength: f64,
    /// Minimum interactions per user (k of the k-core filter).
    pub min_interactions: usize,
    /// RNG seed.
    pub seed: u64,
    /// Category popularity ranking, most popular first (category ids).
    /// `None` draws a random permutation from the seed. The Amazon-shaped
    /// profiles pin this so the organically popular/unpopular categories
    /// match the paper's attack scenarios (Sock and Maillot unpopular,
    /// Running Shoes / Brassiere popular).
    pub popularity_order: Option<Vec<usize>>,
}

impl SyntheticConfig {
    /// An Amazon-Men-shaped profile (paper Table I scaled ≈ 20×down:
    /// 26 155 → ~1 300 users, 82 630 → 4 100 items, 193 365 → ~9 700
    /// feedbacks, same ≈ 7.4 interactions/user).
    pub fn amazon_men_like() -> Self {
        SyntheticConfig {
            name: "Amazon Men (synthetic)".into(),
            num_users: 1300,
            num_items: 4100,
            num_categories: 12,
            mean_interactions_per_user: 7.4,
            category_skew: 0.9,
            item_skew: 0.8,
            user_focus: 3,
            affinity_strength: 4.0,
            min_interactions: 5,
            seed: 0xA11CE,
            // Most → least popular; mirrors the paper's Amazon Men CHR
            // ordering (Jersey/Running Shoes/Analog Clock recommended,
            // Sock barely recommended).
            popularity_order: Some(vec![3, 1, 2, 9, 7, 10, 11, 8, 6, 5, 4, 0]),
        }
    }

    /// An Amazon-Women-shaped profile (18 514 → ~925 users, 76 889 → 3 850
    /// items, 137 929 → ~6 900 feedbacks, ≈ 7.45 interactions/user).
    pub fn amazon_women_like() -> Self {
        SyntheticConfig {
            name: "Amazon Women (synthetic)".into(),
            num_users: 925,
            num_items: 3850,
            num_categories: 12,
            mean_interactions_per_user: 7.45,
            category_skew: 0.9,
            item_skew: 0.8,
            user_focus: 3,
            affinity_strength: 4.0,
            min_interactions: 5,
            seed: 0xB0B,
            // Most → least popular; mirrors Amazon Women (Brassiere and
            // Chain recommended, Maillot barely recommended).
            popularity_order: Some(vec![5, 6, 3, 9, 10, 7, 1, 11, 8, 2, 0, 4]),
        }
    }

    /// A deliberately small configuration for unit tests.
    pub fn tiny_for_tests() -> Self {
        SyntheticConfig {
            name: "Tiny (test)".into(),
            num_users: 60,
            num_items: 120,
            num_categories: 6,
            mean_interactions_per_user: 9.0,
            category_skew: 0.9,
            item_skew: 0.8,
            user_focus: 2,
            affinity_strength: 4.0,
            min_interactions: 5,
            seed: 7,
            popularity_order: None,
        }
    }
}

/// A generated dataset together with the generator's internal popularity
/// model (useful for diagnostics and for seeding user preferences in the
/// recommender experiments).
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    /// The interactions, already 5-core filtered.
    pub dataset: ImplicitDataset,
    /// Category popularity weights used during generation (normalised).
    pub category_weights: Vec<f64>,
    /// Per-user focused categories (post-filtering, aligned with user ids).
    pub user_focus_categories: Vec<Vec<usize>>,
}

impl SyntheticDataset {
    /// Generates a dataset from `config`.
    ///
    /// # Panics
    ///
    /// Panics if any count in the config is zero or
    /// `min_interactions` is zero.
    pub fn generate(config: &SyntheticConfig) -> SyntheticDataset {
        assert!(config.num_users > 0 && config.num_items > 0, "empty dataset config");
        assert!(config.num_categories > 0, "need at least one category");
        assert!(config.min_interactions > 0, "k-core k must be positive");
        assert!(
            config.user_focus >= 1 && config.user_focus <= config.num_categories,
            "user_focus out of range"
        );
        let mut rng = StdRng::seed_from_u64(config.seed);

        // 1. Category popularity: Zipf weights under a rank permutation —
        //    pinned by the profile, or random (so category 0 is not always
        //    the most popular).
        let mut ranks: Vec<usize> = (0..config.num_categories).collect();
        match &config.popularity_order {
            Some(order) => {
                assert_eq!(
                    order.len(),
                    config.num_categories,
                    "popularity_order must rank every category exactly once"
                );
                let mut seen = vec![false; config.num_categories];
                for (rank, &cat) in order.iter().enumerate() {
                    assert!(cat < config.num_categories, "category id {cat} out of range");
                    assert!(!seen[cat], "category id {cat} ranked twice");
                    seen[cat] = true;
                    ranks[cat] = rank;
                }
            }
            None => shuffle(&mut ranks, &mut rng),
        }
        let mut category_weights: Vec<f64> = (0..config.num_categories)
            .map(|c| 1.0 / ((ranks[c] + 1) as f64).powf(config.category_skew))
            .collect();
        let total: f64 = category_weights.iter().sum();
        for w in &mut category_weights {
            *w /= total;
        }

        // 2. Item assignment + within-category popularity.
        let mut item_categories = Vec::with_capacity(config.num_items);
        for _ in 0..config.num_items {
            item_categories.push(sample_weighted(&category_weights, &mut rng));
        }
        // Per-category item lists and popularity weights.
        let mut cat_items: Vec<Vec<usize>> = vec![Vec::new(); config.num_categories];
        for (i, &c) in item_categories.iter().enumerate() {
            cat_items[c].push(i);
        }
        let cat_item_weights: Vec<Vec<f64>> = cat_items
            .iter()
            .map(|items| {
                let mut w: Vec<f64> = (0..items.len())
                    .map(|r| 1.0 / ((r + 1) as f64).powf(config.item_skew))
                    .collect();
                let s: f64 = w.iter().sum();
                for v in &mut w {
                    *v /= s.max(1e-12);
                }
                w
            })
            .collect();

        // 3 + 4. Users and their interactions.
        let activity = LogNormal::new(config.mean_interactions_per_user.ln(), 0.35)
            .expect("valid log-normal parameters");
        let mut user_items: Vec<Vec<usize>> = Vec::with_capacity(config.num_users);
        let mut focus_all: Vec<Vec<usize>> = Vec::with_capacity(config.num_users);
        for _ in 0..config.num_users {
            // Focused categories, weighted by global popularity.
            let mut focus = Vec::with_capacity(config.user_focus);
            while focus.len() < config.user_focus {
                let c = sample_weighted(&category_weights, &mut rng);
                if !focus.contains(&c) {
                    focus.push(c);
                }
            }
            // Mixture over categories: popularity boosted on focus.
            let mut mix = category_weights.clone();
            for &c in &focus {
                mix[c] *= 1.0 + config.affinity_strength;
            }
            let s: f64 = mix.iter().sum();
            for v in &mut mix {
                *v /= s;
            }

            let count = activity.sample(&mut rng).round().max(1.0) as usize;
            let mut items = Vec::with_capacity(count);
            let mut attempts = 0;
            while items.len() < count && attempts < count * 20 {
                attempts += 1;
                let c = sample_weighted(&mix, &mut rng);
                if cat_items[c].is_empty() {
                    continue;
                }
                let k = sample_weighted(&cat_item_weights[c], &mut rng);
                let item = cat_items[c][k];
                if !items.contains(&item) {
                    items.push(item);
                }
            }
            user_items.push(items);
            focus_all.push(focus);
        }

        // 5. Paper preprocessing: drop cold users.
        let raw =
            ImplicitDataset::new(user_items.clone(), item_categories, config.num_categories);
        let dataset = filter_cold_users(&raw, config.min_interactions);
        // Align focus lists with surviving users (same ordering as filter).
        let user_focus_categories: Vec<Vec<usize>> = user_items
            .iter()
            .zip(focus_all)
            .filter(|(items, _)| {
                let mut it: Vec<usize> = (*items).clone();
                it.sort_unstable();
                it.dedup();
                it.len() >= config.min_interactions
            })
            .map(|(_, f)| f)
            .collect();
        assert_eq!(user_focus_categories.len(), dataset.num_users());

        SyntheticDataset { dataset, category_weights, user_focus_categories }
    }
}

/// Samples an index proportionally to `weights` (need not be normalised).
fn sample_weighted(weights: &[f64], rng: &mut impl Rng) -> usize {
    let total: f64 = weights.iter().sum();
    let mut t = rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
    for (i, &w) in weights.iter().enumerate() {
        t -= w;
        if t <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Fisher–Yates shuffle (local helper to avoid the `SliceRandom` dependency
/// surface in the public API).
fn shuffle(v: &mut [usize], rng: &mut impl Rng) {
    for i in (1..v.len()).rev() {
        let j = rng.gen_range(0..=i);
        v.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = SyntheticConfig::tiny_for_tests();
        let a = SyntheticDataset::generate(&cfg);
        let b = SyntheticDataset::generate(&cfg);
        assert_eq!(a.dataset, b.dataset);
        assert_eq!(a.category_weights, b.category_weights);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = SyntheticConfig::tiny_for_tests();
        let mut cfg2 = cfg.clone();
        cfg2.seed = 8;
        assert_ne!(
            SyntheticDataset::generate(&cfg).dataset,
            SyntheticDataset::generate(&cfg2).dataset
        );
    }

    #[test]
    fn five_core_holds() {
        let s = SyntheticDataset::generate(&SyntheticConfig::tiny_for_tests());
        for u in 0..s.dataset.num_users() {
            assert!(s.dataset.user_items(u).len() >= 5);
        }
    }

    #[test]
    fn category_popularity_is_skewed() {
        let s = SyntheticDataset::generate(&SyntheticConfig::tiny_for_tests());
        let max = s.category_weights.iter().cloned().fold(0.0, f64::max);
        let min = s.category_weights.iter().cloned().fold(1.0, f64::min);
        assert!(max / min > 2.0, "weights not skewed: {:?}", s.category_weights);
        let sum: f64 = s.category_weights.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn interaction_volume_is_near_target() {
        let cfg = SyntheticConfig::amazon_men_like();
        let s = SyntheticDataset::generate(&cfg);
        let stats = s.dataset.stats(&cfg.name);
        // 5-core filtering biases per-user counts upward; allow a wide band.
        let ipu = stats.interactions_per_user();
        assert!(
            ipu > cfg.mean_interactions_per_user * 0.8
                && ipu < cfg.mean_interactions_per_user * 1.6,
            "interactions per user {ipu}"
        );
        // Most users survive the 5-core filter.
        assert!(stats.num_users as f64 > cfg.num_users as f64 * 0.5);
    }

    #[test]
    fn item_popularity_within_category_is_skewed() {
        let s = SyntheticDataset::generate(&SyntheticConfig::tiny_for_tests());
        // Count interactions per item; top item should clearly beat median.
        let mut counts = vec![0usize; s.dataset.num_items()];
        for (_, i) in s.dataset.iter_interactions() {
            counts[i] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        assert!(max as f64 > 3.0 * mean, "max {max} vs mean {mean}");
    }

    #[test]
    fn focus_lists_align_with_users() {
        let s = SyntheticDataset::generate(&SyntheticConfig::tiny_for_tests());
        assert_eq!(s.user_focus_categories.len(), s.dataset.num_users());
        for f in &s.user_focus_categories {
            assert_eq!(f.len(), 2);
            assert!(f.iter().all(|&c| c < s.dataset.num_categories()));
        }
    }

    #[test]
    fn pinned_popularity_order_controls_weights() {
        let mut cfg = SyntheticConfig::tiny_for_tests();
        cfg.popularity_order = Some(vec![5, 4, 3, 2, 1, 0]); // reversed
        let s = SyntheticDataset::generate(&cfg);
        // Category 5 is pinned most popular, category 0 least.
        for c in 0..5 {
            assert!(
                s.category_weights[c + 1] > s.category_weights[c],
                "weights not ordered: {:?}",
                s.category_weights
            );
        }
    }

    #[test]
    fn paper_profiles_pin_sock_and_maillot_unpopular() {
        let men = SyntheticDataset::generate(&SyntheticConfig::amazon_men_like());
        // Category 0 (Sock) is pinned least popular in the Men profile.
        let min = men.category_weights.iter().cloned().fold(1.0, f64::min);
        assert!((men.category_weights[0] - min).abs() < 1e-12);
        let women = SyntheticDataset::generate(&SyntheticConfig::amazon_women_like());
        // Category 4 (Maillot) is least popular, 5 (Brassiere) most.
        let min_w = women.category_weights.iter().cloned().fold(1.0, f64::min);
        let max_w = women.category_weights.iter().cloned().fold(0.0, f64::max);
        assert!((women.category_weights[4] - min_w).abs() < 1e-12);
        assert!((women.category_weights[5] - max_w).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "ranked twice")]
    fn duplicate_popularity_order_panics() {
        let mut cfg = SyntheticConfig::tiny_for_tests();
        cfg.popularity_order = Some(vec![0, 0, 1, 2, 3, 4]);
        SyntheticDataset::generate(&cfg);
    }

    #[test]
    fn sample_weighted_respects_support() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = [0.0, 0.0, 1.0, 0.0];
        for _ in 0..50 {
            assert_eq!(sample_weighted(&w, &mut rng), 2);
        }
    }

    #[test]
    #[should_panic(expected = "empty dataset config")]
    fn zero_users_panics() {
        let mut cfg = SyntheticConfig::tiny_for_tests();
        cfg.num_users = 0;
        SyntheticDataset::generate(&cfg);
    }
}
