//! Minimal, dependency-free stand-in for `rayon`.
//!
//! The build environment has no network access, so the workspace vendors the
//! exact surface it uses: `into_par_iter` on ranges and vectors,
//! `par_chunks` / `par_chunks_mut` on slices, and `map` / `map_init` /
//! `enumerate` / `for_each` / `collect` on the resulting iterator.
//!
//! # Execution model
//!
//! Parallel calls run on a **persistent worker pool**: worker threads are
//! spawned once (lazily, up to the highest thread count ever requested) and
//! then sleep on a condition variable between parallel regions, so the
//! per-region cost is a mutex push + wakeup instead of a `thread::spawn` +
//! join round trip. That fixed cost is what used to cap the packed-panel
//! GEMM at ~1.0× parallel/serial: spawning scoped threads per call costs
//! hundreds of microseconds, which is the entire runtime of a 256³ product.
//!
//! Within a region, items are split into more contiguous, ordered chunks
//! than workers (up to [`CHUNKS_PER_WORKER`] per thread) and workers *steal*
//! chunks off a shared atomic counter — a work-stealing-friendly block
//! partition: a worker that finishes early takes the next unclaimed chunk
//! instead of idling behind a static assignment. The calling thread
//! participates in the stealing too, so a region can always finish even if
//! every pool worker is busy serving some other region.
//!
//! Scheduling can never reorder results: outputs are reassembled by chunk
//! index, so a `map` over N items returns exactly the Vec the serial loop
//! would produce. Combined with the per-item seed derivation used by the
//! attack layer, this is what makes every parallel path in the workspace
//! bitwise-independent of thread count *and* of which worker ran which
//! chunk.
//!
//! # Thread policy
//!
//! The effective thread count is resolved, in priority order, from:
//! 1. the innermost active [`with_threads`] override (used by tests/benches),
//! 2. the `TAAMR_THREADS` environment variable,
//! 3. the `RAYON_NUM_THREADS` environment variable (upstream compat),
//! 4. `std::thread::available_parallelism()`.
//!
//! Building with `--features serial` pins the count to 1 everywhere, and
//! nested parallel calls always run inline on the calling thread so a
//! parallel attack batch that calls into parallel gemm cannot explode the
//! thread count.

use std::any::Any;
use std::cell::{Cell, UnsafeCell};
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

// ---------------------------------------------------------------------------
// Thread policy
// ---------------------------------------------------------------------------

/// Stack of `with_threads` overrides; the top entry wins.
static OVERRIDES: Mutex<Vec<usize>> = Mutex::new(Vec::new());
/// Cheap mirror of `OVERRIDES.last()` so the hot path skips the lock.
static OVERRIDE_TOP: AtomicUsize = AtomicUsize::new(0);

fn env_threads() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        let parse = |name: &str| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&n| n > 0)
        };
        parse("TAAMR_THREADS")
            .or_else(|| parse("RAYON_NUM_THREADS"))
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
            })
    })
}

thread_local! {
    /// Set while a thread is executing chunks of a parallel region (pool
    /// workers and the participating caller alike); nested parallel calls on
    /// such a thread run inline.
    static IN_PARALLEL_REGION: Cell<bool> = const { Cell::new(false) };
}

/// The number of threads parallel constructs will use right now.
pub fn current_num_threads() -> usize {
    if cfg!(feature = "serial") {
        return 1;
    }
    if IN_PARALLEL_REGION.with(|f| f.get()) {
        return 1;
    }
    match OVERRIDE_TOP.load(Ordering::Acquire) {
        0 => env_threads(),
        n => n,
    }
}

/// True when the `serial` cargo feature pinned everything to one thread.
pub fn serial_feature_enabled() -> bool {
    cfg!(feature = "serial")
}

/// Runs `f` with the thread count pinned to `n` (process-wide), restoring the
/// previous policy afterwards — including on panic. Overrides nest; the
/// innermost wins. The `serial` feature still takes precedence.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            let mut stack = OVERRIDES.lock().unwrap_or_else(|e| e.into_inner());
            stack.pop();
            OVERRIDE_TOP.store(stack.last().copied().unwrap_or(0), Ordering::Release);
        }
    }
    let n = n.max(1);
    {
        let mut stack = OVERRIDES.lock().unwrap_or_else(|e| e.into_inner());
        stack.push(n);
        OVERRIDE_TOP.store(n, Ordering::Release);
    }
    let _guard = Guard;
    f()
}

// ---------------------------------------------------------------------------
// Persistent worker pool
// ---------------------------------------------------------------------------

/// Upper bound on chunks per participating thread. More chunks than threads
/// is what makes the partition work-stealing-friendly: a straggler holds up
/// at most `1/CHUNKS_PER_WORKER` of one thread's share instead of a whole
/// static chunk.
pub const CHUNKS_PER_WORKER: usize = 4;

/// Hard cap on pool workers, a backstop against pathological
/// `with_threads(huge)` calls. Regions still complete above the cap — the
/// caller and however many workers exist steal every chunk.
const MAX_POOL_WORKERS: usize = 128;

/// A type-erased reference to a live [`Region`] on some caller's stack.
///
/// Soundness: the caller that posted this job blocks until every popped copy
/// has retired (see `run_region`) and revokes unpopped copies from the queue
/// before returning, so the pointee strictly outlives every dereference.
#[derive(Clone, Copy)]
struct Job {
    region: *const (),
    run: unsafe fn(*const ()),
}

// SAFETY: the region behind the pointer is Sync (all shared state is atomics,
// mutexes, or index-claimed UnsafeCells) and outlives the job per the
// contract above.
unsafe impl Send for Job {}

struct PoolState {
    queue: VecDeque<Job>,
    workers: usize,
}

struct Pool {
    state: Mutex<PoolState>,
    work_cv: Condvar,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState { queue: VecDeque::new(), workers: 0 }),
        work_cv: Condvar::new(),
    })
}

impl Pool {
    /// Grows the pool to at least `want` workers (capped). Workers are
    /// detached daemon threads that live for the rest of the process.
    fn ensure_workers(&self, want: usize) {
        let want = want.min(MAX_POOL_WORKERS);
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while st.workers < want {
            st.workers += 1;
            let name = format!("taamr-par-{}", st.workers);
            // Spawn failure is unrecoverable resource exhaustion; the region
            // still completes on the caller thread, so just stop growing.
            if std::thread::Builder::new().name(name).spawn(worker_main).is_err() {
                st.workers -= 1;
                break;
            }
        }
    }

    /// Posts `copies` references to `job` and wakes workers.
    fn post(&self, job: Job, copies: usize) {
        if copies == 0 {
            return;
        }
        {
            let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
            for _ in 0..copies {
                st.queue.push_back(job);
            }
        }
        if copies == 1 {
            self.work_cv.notify_one();
        } else {
            self.work_cv.notify_all();
        }
    }

    /// Removes every queued copy pointing at `region`; returns how many were
    /// removed (i.e. never popped by a worker).
    fn revoke(&self, region: *const ()) -> usize {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let before = st.queue.len();
        st.queue.retain(|j| !std::ptr::eq(j.region, region));
        before - st.queue.len()
    }
}

fn worker_main() {
    let pool = pool();
    loop {
        let job = {
            let mut st = pool.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = st.queue.pop_front() {
                    break job;
                }
                st = pool.work_cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        IN_PARALLEL_REGION.with(|flag| flag.set(true));
        // Worker-side panics are captured inside the region (per chunk), so
        // this unwinding is a defensive impossibility guard: a worker thread
        // must never die, or queued jobs could strand.
        let _ = catch_unwind(AssertUnwindSafe(|| unsafe { (job.run)(job.region) }));
        IN_PARALLEL_REGION.with(|flag| flag.set(false));
    }
}

// ---------------------------------------------------------------------------
// Fork-join region
// ---------------------------------------------------------------------------

struct RegionStatus {
    /// Popped job copies that have finished touching the region.
    retired: usize,
}

/// One parallel call's shared state, living on the caller's stack for the
/// duration of `run_chunked`.
struct Region<'env, I, O, S, INIT, F> {
    /// Chunk payloads: `(start index, items)`, claimed exactly once via
    /// `next` so each cell is read by one thread.
    #[allow(clippy::type_complexity)]
    chunks: Vec<UnsafeCell<Option<(usize, Vec<I>)>>>,
    /// Per-chunk outputs, written by whichever thread claimed the chunk and
    /// read by the caller after the completion barrier.
    results: Vec<UnsafeCell<Option<Vec<O>>>>,
    /// The steal counter: `fetch_add` hands out chunk indices.
    next: AtomicUsize,
    init: &'env INIT,
    f: &'env F,
    status: Mutex<RegionStatus>,
    done_cv: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
    /// `S` only appears inside the worker bodies; anchor it for inference.
    _state: std::marker::PhantomData<fn() -> S>,
}

// SAFETY: chunk/result cells are accessed under the exclusive-claim protocol
// (unique index from `next`, completion barrier before the caller reads);
// everything else is Sync by construction. `S` never crosses threads — each
// worker builds its own via `init`.
unsafe impl<I: Send, O: Send, S, INIT: Sync, F: Sync> Sync for Region<'_, I, O, S, INIT, F> {}

impl<I, O, S, INIT, F> Region<'_, I, O, S, INIT, F>
where
    I: Send,
    O: Send,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, usize, I) -> O + Sync,
{
    /// Steals and runs chunks until the counter is exhausted. Panics from
    /// `init`/`f` are recorded (first wins) and the loop continues, so every
    /// chunk is always claimed and the caller's completion barrier cannot
    /// hang; the caller re-raises after the barrier.
    fn work(&self) {
        let mut state: Option<S> = None;
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.chunks.len() {
                break;
            }
            // SAFETY: `i` came from the shared counter exactly once, so this
            // thread has exclusive access to cell `i`; the payload was
            // written before the job was posted (release via the pool/status
            // mutexes).
            let (start, items) = unsafe { (*self.chunks[i].get()).take() }
                .expect("chunk claimed twice");
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let st = match &mut state {
                    Some(st) => st,
                    none => none.insert((self.init)()),
                };
                items
                    .into_iter()
                    .enumerate()
                    .map(|(d, item)| (self.f)(st, start + d, item))
                    .collect::<Vec<O>>()
            }));
            match outcome {
                // SAFETY: same exclusive claim as above.
                Ok(out) => unsafe { *self.results[i].get() = Some(out) },
                Err(payload) => {
                    let mut slot = self.panic.lock().unwrap_or_else(|e| e.into_inner());
                    slot.get_or_insert(payload);
                    // The per-worker state may be mid-mutation; rebuild it.
                    state = None;
                }
            }
        }
    }
}

/// The type-erased entry a pool worker runs. Retirement is counted in a drop
/// guard so the caller's barrier advances even on (impossible) unwinds.
unsafe fn run_region<I, O, S, INIT, F>(ptr: *const ())
where
    I: Send,
    O: Send,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, usize, I) -> O + Sync,
{
    let region = unsafe { &*(ptr as *const Region<'_, I, O, S, INIT, F>) };
    struct Retire<'a> {
        status: &'a Mutex<RegionStatus>,
        cv: &'a Condvar,
    }
    impl Drop for Retire<'_> {
        fn drop(&mut self) {
            let mut st = self.status.lock().unwrap_or_else(|e| e.into_inner());
            st.retired += 1;
            drop(st);
            self.cv.notify_all();
        }
    }
    let _retire = Retire { status: &region.status, cv: &region.done_cv };
    region.work();
}

/// Splits `items` into contiguous, ordered chunks (up to
/// [`CHUNKS_PER_WORKER`] per participating thread), runs them across the
/// persistent pool plus the calling thread, and reassembles outputs in input
/// order. `init` runs at most once per participating thread.
fn run_chunked<I, O, S, INIT, F>(items: Vec<I>, init: INIT, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, usize, I) -> O + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        let mut state = init();
        return items
            .into_iter()
            .enumerate()
            .map(|(idx, item)| f(&mut state, idx, item))
            .collect();
    }

    // Contiguous ordered partition into more chunks than threads, so early
    // finishers steal the remainder. The first `rem` chunks get one extra
    // item; boundaries depend only on `n` and the thread policy, never on
    // scheduling.
    let num_chunks = n.min(threads * CHUNKS_PER_WORKER);
    let base = n / num_chunks;
    let rem = n % num_chunks;
    let mut chunks = Vec::with_capacity(num_chunks);
    let mut it = items.into_iter();
    let mut start = 0;
    for c in 0..num_chunks {
        let size = base + usize::from(c < rem);
        chunks.push(UnsafeCell::new(Some((start, it.by_ref().take(size).collect::<Vec<I>>()))));
        start += size;
    }

    let region = Region {
        chunks,
        results: (0..num_chunks).map(|_| UnsafeCell::new(None)).collect(),
        next: AtomicUsize::new(0),
        init: &init,
        f: &f,
        status: Mutex::new(RegionStatus { retired: 0 }),
        done_cv: Condvar::new(),
        panic: Mutex::new(None),
        _state: std::marker::PhantomData,
    };

    let pool = pool();
    let helpers = threads - 1;
    pool.ensure_workers(helpers);
    let job = Job {
        region: &region as *const _ as *const (),
        run: run_region::<I, O, S, INIT, F>,
    };
    pool.post(job, helpers);

    // The caller participates in the steal loop; nested parallel calls made
    // by `f` on this thread must run inline, exactly as they do on workers.
    let was_in_region = IN_PARALLEL_REGION.with(|flag| flag.replace(true));
    region.work();
    IN_PARALLEL_REGION.with(|flag| flag.set(was_in_region));

    // Completion barrier: drop the queue copies no worker ever picked up,
    // then wait for every picked-up copy to retire. After this, no other
    // thread holds a reference into `region`.
    let revoked = pool.revoke(job.region);
    let expected = helpers - revoked;
    {
        let mut st = region.status.lock().unwrap_or_else(|e| e.into_inner());
        while st.retired < expected {
            st = region.done_cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    if let Some(payload) = region.panic.lock().unwrap_or_else(|e| e.into_inner()).take() {
        std::panic::resume_unwind(payload);
    }

    let mut flat = Vec::with_capacity(n);
    for cell in region.results {
        flat.extend(cell.into_inner().expect("all chunks completed"));
    }
    flat
}

// ---------------------------------------------------------------------------
// Parallel iterator (eager, materialized, order-preserving)
// ---------------------------------------------------------------------------

/// An ordered collection of items about to be processed in parallel.
///
/// Every adapter is eager: `map` runs the closure across threads immediately
/// and materializes the outputs in input order.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    pub fn map<O, F>(self, f: F) -> ParIter<O>
    where
        O: Send,
        F: Fn(T) -> O + Sync,
    {
        ParIter {
            items: run_chunked(self.items, || (), |_, _, item| f(item)),
        }
    }

    /// `map` with per-thread scratch state, created once per worker thread.
    pub fn map_init<S, O, INIT, F>(self, init: INIT, f: F) -> ParIter<O>
    where
        O: Send,
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, T) -> O + Sync,
    {
        ParIter {
            items: run_chunked(self.items, init, |state, _, item| f(state, item)),
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        run_chunked(self.items, || (), |_, _, item| f(item));
    }

    /// `for_each` with per-thread scratch state.
    pub fn for_each_init<S, INIT, F>(self, init: INIT, f: F)
    where
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, T) + Sync,
    {
        run_chunked(self.items, init, |state, _, item| f(state, item));
    }

    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    pub fn collect<C: FromParallelIterator<T>>(self) -> C {
        C::from_par_iter(self.items)
    }

    /// Upstream-compat no-op: chunk boundaries here are already derived from
    /// the item count and thread policy alone.
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }
}

/// Collections buildable from an ordered parallel iterator.
pub trait FromParallelIterator<T> {
    fn from_par_iter(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter(items: Vec<T>) -> Self {
        items
    }
}

/// Fallible collection: `Ok` of the collected successes, or the first error
/// in input order. (Upstream rayon short-circuits; this eager shim evaluates
/// every item first, which only costs wasted work, never a different
/// result.)
impl<T, E, C: FromParallelIterator<T>> FromParallelIterator<Result<T, E>> for Result<C, E> {
    fn from_par_iter(items: Vec<Result<T, E>>) -> Self {
        let mut ok = Vec::with_capacity(items.len());
        for item in items {
            ok.push(item?);
        }
        Ok(C::from_par_iter(ok))
    }
}

/// Conversion into a [`ParIter`].
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for Range<u64> {
    type Item = u64;
    fn into_par_iter(self) -> ParIter<u64> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Parallel views over shared slices.
pub trait ParallelSlice<T: Sync> {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
    fn par_iter(&self) -> ParIter<&T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        assert!(chunk_size > 0, "par_chunks: chunk size must be positive");
        ParIter {
            items: self.chunks(chunk_size).collect(),
        }
    }

    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Parallel views over mutable slices (disjoint chunks, so no locking).
pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
    fn par_iter_mut(&mut self) -> ParIter<&mut T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        assert!(chunk_size > 0, "par_chunks_mut: chunk size must be positive");
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }

    fn par_iter_mut(&mut self) -> ParIter<&mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

pub mod prelude {
    pub use crate::{FromParallelIterator, IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn order_is_thread_count_invariant() {
        let serial: Vec<usize> = with_threads(1, || {
            (0..257usize).into_par_iter().map(|i| i * i).collect()
        });
        for threads in [2, 3, 8] {
            let par: Vec<usize> = with_threads(threads, || {
                (0..257usize).into_par_iter().map(|i| i * i).collect()
            });
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn par_chunks_mut_writes_disjoint_regions() {
        let mut data = vec![0u64; 100];
        data.par_chunks_mut(7).enumerate().for_each(|(ci, chunk)| {
            for v in chunk.iter_mut() {
                *v = ci as u64;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, (i / 7) as u64);
        }
    }

    #[test]
    fn map_init_runs_init_once_per_thread() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let inits = AtomicUsize::new(0);
        let out: Vec<usize> = with_threads(4, || {
            (0..64usize)
                .into_par_iter()
                .map_init(
                    || {
                        inits.fetch_add(1, Ordering::SeqCst);
                        0usize
                    },
                    |_, i| i,
                )
                .collect()
        });
        assert_eq!(out.len(), 64);
        assert!(inits.load(Ordering::SeqCst) <= 4);
    }

    #[test]
    fn with_threads_restores_policy() {
        let outer = current_num_threads();
        with_threads(3, || {
            if !serial_feature_enabled() {
                assert_eq!(current_num_threads(), 3);
            }
            with_threads(2, || {
                if !serial_feature_enabled() {
                    assert_eq!(current_num_threads(), 2);
                }
            });
        });
        assert_eq!(current_num_threads(), outer);
    }

    #[test]
    fn panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            with_threads(4, || {
                (0..16usize).into_par_iter().for_each(|i| {
                    if i == 11 {
                        panic!("boom");
                    }
                });
            })
        });
        assert!(result.is_err());
        assert_eq!(current_num_threads(), current_num_threads());
    }

    #[test]
    fn pool_survives_a_panicking_region() {
        // A panic in one region must not kill pool workers: the next region
        // still completes and returns ordered results.
        let _ = std::panic::catch_unwind(|| {
            with_threads(4, || {
                (0..32usize).into_par_iter().for_each(|i| {
                    if i % 7 == 3 {
                        panic!("recoverable");
                    }
                });
            })
        });
        let out: Vec<usize> = with_threads(4, || {
            (0..128usize).into_par_iter().map(|i| i + 1).collect()
        });
        assert_eq!(out, (1..=128).collect::<Vec<_>>());
    }

    #[test]
    fn nested_parallelism_runs_inline() {
        with_threads(4, || {
            (0..8usize).into_par_iter().for_each(|_| {
                // Inside a worker, further parallel calls must not spawn.
                assert_eq!(current_num_threads(), 1);
            });
        });
    }

    #[test]
    fn concurrent_regions_from_many_threads_complete() {
        // Several OS threads each drive their own regions through the one
        // shared pool; every region must finish with correct, ordered output
        // even when workers are busy serving someone else.
        let handles: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    for round in 0..8 {
                        let out: Vec<usize> = with_threads(4, || {
                            (0..200usize).into_par_iter().map(|i| i * 3 + t + round).collect()
                        });
                        assert_eq!(
                            out,
                            (0..200).map(|i| i * 3 + t + round).collect::<Vec<_>>()
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("concurrent region thread");
        }
    }

    #[test]
    fn results_are_identical_regardless_of_chunk_count() {
        // Chunk boundaries vary with the thread policy; outputs must not.
        let expect: Vec<u64> = (0..997u64).map(|i| i.wrapping_mul(2654435761)).collect();
        for threads in [1, 2, 3, 5, 8, 16] {
            let got: Vec<u64> = with_threads(threads, || {
                (0..997u64).into_par_iter().map(|i| i.wrapping_mul(2654435761)).collect()
            });
            assert_eq!(got, expect, "threads={threads}");
        }
    }
}
