//! Minimal, dependency-free stand-in for `rayon`.
//!
//! The build environment has no network access, so the workspace vendors the
//! exact surface it uses: `into_par_iter` on ranges and vectors,
//! `par_chunks` / `par_chunks_mut` on slices, and `map` / `map_init` /
//! `enumerate` / `for_each` / `collect` on the resulting iterator.
//!
//! # Execution model
//!
//! Unlike upstream rayon's work-stealing pool, this shim is a plain
//! fork-join: each parallel call splits its items into at most
//! [`current_num_threads`] *contiguous, ordered* chunks and runs them on
//! `std::thread::scope` threads. Outputs are reassembled in input order, so
//! a `map` over N items returns exactly the Vec the serial loop would
//! produce — scheduling can never reorder results. Combined with the
//! per-item seed derivation used by the attack layer, this is what makes
//! every parallel path in the workspace bitwise-independent of thread count.
//!
//! # Thread policy
//!
//! The effective thread count is resolved, in priority order, from:
//! 1. the innermost active [`with_threads`] override (used by tests/benches),
//! 2. the `TAAMR_THREADS` environment variable,
//! 3. the `RAYON_NUM_THREADS` environment variable (upstream compat),
//! 4. `std::thread::available_parallelism()`.
//!
//! Building with `--features serial` pins the count to 1 everywhere, and
//! nested parallel calls always run inline on the calling thread so a
//! parallel attack batch that calls into parallel gemm cannot explode the
//! thread count.

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

// ---------------------------------------------------------------------------
// Thread policy
// ---------------------------------------------------------------------------

/// Stack of `with_threads` overrides; the top entry wins.
static OVERRIDES: Mutex<Vec<usize>> = Mutex::new(Vec::new());
/// Cheap mirror of `OVERRIDES.last()` so the hot path skips the lock.
static OVERRIDE_TOP: AtomicUsize = AtomicUsize::new(0);

fn env_threads() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        let parse = |name: &str| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&n| n > 0)
        };
        parse("TAAMR_THREADS")
            .or_else(|| parse("RAYON_NUM_THREADS"))
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
            })
    })
}

thread_local! {
    /// Set while a worker thread is running a parallel region; nested
    /// parallel calls on such a thread run inline.
    static IN_PARALLEL_REGION: Cell<bool> = const { Cell::new(false) };
}

/// The number of threads parallel constructs will use right now.
pub fn current_num_threads() -> usize {
    if cfg!(feature = "serial") {
        return 1;
    }
    if IN_PARALLEL_REGION.with(|f| f.get()) {
        return 1;
    }
    match OVERRIDE_TOP.load(Ordering::Acquire) {
        0 => env_threads(),
        n => n,
    }
}

/// True when the `serial` cargo feature pinned everything to one thread.
pub fn serial_feature_enabled() -> bool {
    cfg!(feature = "serial")
}

/// Runs `f` with the thread count pinned to `n` (process-wide), restoring the
/// previous policy afterwards — including on panic. Overrides nest; the
/// innermost wins. The `serial` feature still takes precedence.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            let mut stack = OVERRIDES.lock().unwrap_or_else(|e| e.into_inner());
            stack.pop();
            OVERRIDE_TOP.store(stack.last().copied().unwrap_or(0), Ordering::Release);
        }
    }
    let n = n.max(1);
    {
        let mut stack = OVERRIDES.lock().unwrap_or_else(|e| e.into_inner());
        stack.push(n);
        OVERRIDE_TOP.store(n, Ordering::Release);
    }
    let _guard = Guard;
    f()
}

// ---------------------------------------------------------------------------
// Fork-join executor
// ---------------------------------------------------------------------------

/// Splits `items` into at most `current_num_threads()` contiguous chunks,
/// maps each chunk on its own scoped thread (`init` once per thread), and
/// reassembles outputs in input order.
fn run_chunked<I, O, S, INIT, F>(items: Vec<I>, init: INIT, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, usize, I) -> O + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        let mut state = init();
        return items
            .into_iter()
            .enumerate()
            .map(|(idx, item)| f(&mut state, idx, item))
            .collect();
    }

    // Contiguous ordered partition: the first `rem` chunks get one extra item.
    let base = n / threads;
    let rem = n % threads;
    let mut chunks: Vec<(usize, Vec<I>)> = Vec::with_capacity(threads);
    let mut items = items.into_iter();
    let mut start = 0;
    for t in 0..threads {
        let size = base + usize::from(t < rem);
        chunks.push((start, items.by_ref().take(size).collect()));
        start += size;
    }

    let mut outputs: Vec<Vec<O>> = Vec::with_capacity(threads);
    let (init, f) = (&init, &f);
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|(chunk_start, chunk)| {
                scope.spawn(move || {
                    IN_PARALLEL_REGION.with(|flag| flag.set(true));
                    let mut state = init();
                    chunk
                        .into_iter()
                        .enumerate()
                        .map(|(i, item)| f(&mut state, chunk_start + i, item))
                        .collect::<Vec<O>>()
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(out) => outputs.push(out),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    let mut flat = Vec::with_capacity(n);
    for out in outputs {
        flat.extend(out);
    }
    flat
}

// ---------------------------------------------------------------------------
// Parallel iterator (eager, materialized, order-preserving)
// ---------------------------------------------------------------------------

/// An ordered collection of items about to be processed in parallel.
///
/// Every adapter is eager: `map` runs the closure across threads immediately
/// and materializes the outputs in input order.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    pub fn map<O, F>(self, f: F) -> ParIter<O>
    where
        O: Send,
        F: Fn(T) -> O + Sync,
    {
        ParIter {
            items: run_chunked(self.items, || (), |_, _, item| f(item)),
        }
    }

    /// `map` with per-thread scratch state, created once per worker thread.
    pub fn map_init<S, O, INIT, F>(self, init: INIT, f: F) -> ParIter<O>
    where
        O: Send,
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, T) -> O + Sync,
    {
        ParIter {
            items: run_chunked(self.items, init, |state, _, item| f(state, item)),
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        run_chunked(self.items, || (), |_, _, item| f(item));
    }

    /// `for_each` with per-thread scratch state.
    pub fn for_each_init<S, INIT, F>(self, init: INIT, f: F)
    where
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, T) + Sync,
    {
        run_chunked(self.items, init, |state, _, item| f(state, item));
    }

    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    pub fn collect<C: FromParallelIterator<T>>(self) -> C {
        C::from_par_iter(self.items)
    }

    /// Upstream-compat no-op: chunking here is already one contiguous block
    /// per thread.
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }
}

/// Collections buildable from an ordered parallel iterator.
pub trait FromParallelIterator<T> {
    fn from_par_iter(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter(items: Vec<T>) -> Self {
        items
    }
}

/// Fallible collection: `Ok` of the collected successes, or the first error
/// in input order. (Upstream rayon short-circuits; this eager shim evaluates
/// every item first, which only costs wasted work, never a different
/// result.)
impl<T, E, C: FromParallelIterator<T>> FromParallelIterator<Result<T, E>> for Result<C, E> {
    fn from_par_iter(items: Vec<Result<T, E>>) -> Self {
        let mut ok = Vec::with_capacity(items.len());
        for item in items {
            ok.push(item?);
        }
        Ok(C::from_par_iter(ok))
    }
}

/// Conversion into a [`ParIter`].
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for Range<u64> {
    type Item = u64;
    fn into_par_iter(self) -> ParIter<u64> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Parallel views over shared slices.
pub trait ParallelSlice<T: Sync> {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
    fn par_iter(&self) -> ParIter<&T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        assert!(chunk_size > 0, "par_chunks: chunk size must be positive");
        ParIter {
            items: self.chunks(chunk_size).collect(),
        }
    }

    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Parallel views over mutable slices (disjoint chunks, so no locking).
pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
    fn par_iter_mut(&mut self) -> ParIter<&mut T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        assert!(chunk_size > 0, "par_chunks_mut: chunk size must be positive");
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }

    fn par_iter_mut(&mut self) -> ParIter<&mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

pub mod prelude {
    pub use crate::{FromParallelIterator, IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn order_is_thread_count_invariant() {
        let serial: Vec<usize> = with_threads(1, || {
            (0..257usize).into_par_iter().map(|i| i * i).collect()
        });
        for threads in [2, 3, 8] {
            let par: Vec<usize> = with_threads(threads, || {
                (0..257usize).into_par_iter().map(|i| i * i).collect()
            });
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn par_chunks_mut_writes_disjoint_regions() {
        let mut data = vec![0u64; 100];
        data.par_chunks_mut(7).enumerate().for_each(|(ci, chunk)| {
            for v in chunk.iter_mut() {
                *v = ci as u64;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, (i / 7) as u64);
        }
    }

    #[test]
    fn map_init_runs_init_once_per_thread() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let inits = AtomicUsize::new(0);
        let out: Vec<usize> = with_threads(4, || {
            (0..64usize)
                .into_par_iter()
                .map_init(
                    || {
                        inits.fetch_add(1, Ordering::SeqCst);
                        0usize
                    },
                    |_, i| i,
                )
                .collect()
        });
        assert_eq!(out.len(), 64);
        assert!(inits.load(Ordering::SeqCst) <= 4);
    }

    #[test]
    fn with_threads_restores_policy() {
        let outer = current_num_threads();
        with_threads(3, || {
            if !serial_feature_enabled() {
                assert_eq!(current_num_threads(), 3);
            }
            with_threads(2, || {
                if !serial_feature_enabled() {
                    assert_eq!(current_num_threads(), 2);
                }
            });
        });
        assert_eq!(current_num_threads(), outer);
    }

    #[test]
    fn panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            with_threads(4, || {
                (0..16usize).into_par_iter().for_each(|i| {
                    if i == 11 {
                        panic!("boom");
                    }
                });
            })
        });
        assert!(result.is_err());
        assert_eq!(current_num_threads(), current_num_threads());
    }

    #[test]
    fn nested_parallelism_runs_inline() {
        with_threads(4, || {
            (0..8usize).into_par_iter().for_each(|_| {
                // Inside a worker, further parallel calls must not spawn.
                assert_eq!(current_num_threads(), 1);
            });
        });
    }
}
