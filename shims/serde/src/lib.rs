//! Minimal, dependency-free stand-in for `serde` + `serde_derive`.
//!
//! Upstream serde's zero-copy visitor architecture is far more than this
//! workspace needs: the repo (de)serializes plain config/report/model structs
//! to JSON files. This shim routes everything through an owned [`Value`]
//! tree — `T -> Value -> text` and back — which `serde_json` (the sibling
//! shim) renders and parses. The derive macros generate the same
//! field-by-field code upstream would, minus the streaming.

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON-shaped document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Negative integers.
    Int(i64),
    /// Non-negative integers.
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object by name.
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into a [`Value`] tree.
pub trait Serialize {
    fn to_json_value(&self) -> Value;
}

/// Conversion from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_json_value(v: &Value) -> Result<Self, DeError>;

    /// Called by derived code when an object field is absent. `Option`
    /// overrides this to produce `None`; everything else errors.
    fn missing_field(field: &str) -> Result<Self, DeError> {
        Err(DeError(format!("missing field `{field}`")))
    }
}

fn type_err<T>(expected: &str, got: &Value) -> Result<T, DeError> {
    Err(DeError(format!("expected {expected}, found {}", got.type_name())))
}

// --- scalars ---------------------------------------------------------------

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => type_err("bool", other),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, DeError> {
                let raw: u64 = match v {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    Value::Float(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                        *f as u64
                    }
                    other => return type_err("unsigned integer", other),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError(format!("integer {raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::UInt(i as u64) } else { Value::Int(i) }
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, DeError> {
                let raw: i64 = match v {
                    Value::Int(i) => *i,
                    Value::UInt(u) if *u <= i64::MAX as u64 => *u as i64,
                    Value::Float(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => *f as i64,
                    other => return type_err("integer", other),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError(format!("integer {raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                let f = *self as f64;
                // JSON has no NaN/Infinity literal; upstream serde_json emits
                // null for them too.
                if f.is_finite() { Value::Float(f) } else { Value::Null }
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Null => Ok(<$t>::NAN),
                    other => type_err("number", other),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => type_err("string", other),
        }
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

// --- containers ------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_json_value).collect(),
            other => type_err("array", other),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }

    fn missing_field(_field: &str) -> Result<Self, DeError> {
        Ok(None)
    }
}

macro_rules! impl_tuple {
    ($len:literal => $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_json_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($t::from_json_value(&items[$idx])?,)+))
                    }
                    Value::Array(items) => Err(DeError(format!(
                        "expected tuple of {} elements, found {}", $len, items.len()
                    ))),
                    other => type_err("array (tuple)", other),
                }
            }
        }
    };
}
impl_tuple!(2 => A.0, B.1);
impl_tuple!(3 => A.0, B.1, C.2);
impl_tuple!(4 => A.0, B.1, C.2, D.3);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrip_and_missing_field() {
        assert_eq!(Option::<u32>::from_json_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_json_value(&Value::UInt(3)).unwrap(), Some(3));
        assert_eq!(Option::<u32>::missing_field("x").unwrap(), None);
        assert!(u32::missing_field("x").is_err());
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(f32::from_json_value(&Value::UInt(2)).unwrap(), 2.0);
        assert_eq!(usize::from_json_value(&Value::Float(5.0)).unwrap(), 5);
        assert!(usize::from_json_value(&Value::Float(5.5)).is_err());
        assert!(u8::from_json_value(&Value::UInt(300)).is_err());
        assert!(f32::from_json_value(&Value::Null).unwrap().is_nan());
    }

    #[test]
    fn tuple_roundtrip() {
        let v = (3usize, 7usize).to_json_value();
        assert_eq!(<(usize, usize)>::from_json_value(&v).unwrap(), (3, 7));
        assert!(<(usize, usize)>::from_json_value(&Value::Array(vec![Value::UInt(1)])).is_err());
    }

    #[test]
    fn vec_roundtrip() {
        let xs = vec![1.5f32, -2.0, 0.25];
        let back = Vec::<f32>::from_json_value(&xs.to_json_value()).unwrap();
        assert_eq!(xs, back);
    }
}
