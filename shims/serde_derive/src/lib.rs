//! Syn-free `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! shimmed `serde` crate.
//!
//! Supports exactly the shapes this workspace serializes: non-generic
//! structs with named fields, and non-generic enums whose variants are unit
//! or have named fields (externally tagged, matching upstream serde's JSON:
//! `"Variant"` for unit variants, `{"Variant": {..fields..}}` for struct
//! variants). Anything else produces a `compile_error!` naming the
//! limitation rather than silently misbehaving. Field types are never
//! parsed — the generated code leans on type inference inside a struct
//! literal, so arbitrary field types work as long as they implement the
//! serde traits.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed enum variant: its name, plus `Some(named fields)` for a
/// struct variant or `None` for a unit variant.
type EnumVariant = (String, Option<Vec<String>>);

enum Shape {
    /// Named struct fields, in declaration order.
    Struct { name: String, fields: Vec<String> },
    /// Enum variants, in declaration order.
    Enum { name: String, variants: Vec<EnumVariant> },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Skips `#[...]` attribute groups (doc comments on items/fields included).
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skips `pub` / `pub(crate)` / `pub(in ...)` visibility modifiers.
fn skip_visibility(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(ident)) = tokens.get(i) {
        if ident.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_visibility(&tokens, i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        _ => return Err("expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        _ => return Err("expected type name".into()),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err("generic types are not supported by the serde shim derive".into());
        }
    }

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            return Err("tuple structs are not supported by the serde shim derive".into());
        }
        _ => return Err("expected a braced body".into()),
    };
    let body: Vec<TokenTree> = body.into_iter().collect();

    match kind.as_str() {
        "struct" => parse_struct_fields(&body).map(|fields| Shape::Struct { name, fields }),
        "enum" => parse_enum_variants(&body).map(|variants| Shape::Enum { name, variants }),
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn parse_struct_fields(body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        i = skip_attrs(body, i);
        if i >= body.len() {
            break;
        }
        i = skip_visibility(body, i);
        let field = match body.get(i) {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match body.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("expected `:` after field `{field}`")),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        // Parens/brackets/braces are atomic token groups, but `<`/`>` are
        // plain puncts, so commas inside e.g. `Vec<(usize, usize)>` need the
        // depth counter.
        let mut depth = 0i32;
        while i < body.len() {
            match &body[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(field);
    }
    if fields.is_empty() {
        return Err("structs without named fields are not supported".into());
    }
    Ok(fields)
}

fn parse_enum_variants(body: &[TokenTree]) -> Result<Vec<EnumVariant>, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < body.len() {
        i = skip_attrs(body, i);
        if i >= body.len() {
            break;
        }
        let variant = match body.get(i) {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let fields = match body.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Some(parse_struct_fields(&inner).map_err(|e| {
                    format!("in struct variant `{variant}`: {e}")
                })?)
            }
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "enum variant `{variant}` is a tuple variant; only unit and \
                     struct variants are supported"
                ));
            }
            _ => None,
        };
        match body.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Punct(_)) => {
                return Err(format!(
                    "enum variant `{variant}` has a discriminant; only unit and \
                     struct variants are supported"
                ));
            }
            Some(other) => return Err(format!("unexpected token after variant: {other:?}")),
        }
        variants.push((variant, fields));
    }
    if variants.is_empty() {
        return Err("empty enums are not supported".into());
    }
    Ok(variants)
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(shape) => shape,
        Err(msg) => return compile_error(&msg),
    };
    let code = match shape {
        Shape::Struct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(\"{f}\".to_string(), ::serde::Serialize::to_json_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_json_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|(v, fields)| match fields {
                    None => {
                        format!("{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),")
                    }
                    Some(fields) => {
                        let bindings = fields.join(", ");
                        let entries: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{f}\".to_string(), \
                                     ::serde::Serialize::to_json_value({f})),"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {bindings} }} => ::serde::Value::Object(vec![(\
                                 \"{v}\".to_string(), \
                                 ::serde::Value::Object(vec![{entries}]),\
                             )]),"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_json_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(shape) => shape,
        Err(msg) => return compile_error(&msg),
    };
    let code = match shape {
        Shape::Struct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: match __v.get_field(\"{f}\") {{\n\
                             Some(__field) => ::serde::Deserialize::from_json_value(__field)?,\n\
                             None => ::serde::Deserialize::missing_field(\"{f}\")?,\n\
                         }},"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_json_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match __v {{\n\
                             ::serde::Value::Object(_) => Ok({name} {{ {entries} }}),\n\
                             __other => Err(::serde::DeError::custom(format!(\n\
                                 \"expected object for struct {name}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, fields)| fields.is_none())
                .map(|(v, _)| format!("\"{v}\" => Ok({name}::{v}),"))
                .collect();
            let struct_arms: String = variants
                .iter()
                .filter_map(|(v, fields)| fields.as_ref().map(|f| (v, f)))
                .map(|(v, fields)| {
                    let entries: String = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: match __body.get_field(\"{f}\") {{\n\
                                     Some(__field) => \
                                         ::serde::Deserialize::from_json_value(__field)?,\n\
                                     None => ::serde::Deserialize::missing_field(\"{f}\")?,\n\
                                 }},"
                            )
                        })
                        .collect();
                    format!("\"{v}\" => Ok({name}::{v} {{ {entries} }}),")
                })
                .collect();
            // Enums without struct variants keep the old string-only error
            // path, so their generated code binds no unused `__body`.
            let none_arm = if struct_arms.is_empty() {
                format!(
                    "Err(::serde::DeError::custom(\n\
                         \"expected string for enum {name}\".to_string()))"
                )
            } else {
                format!(
                    "match __v {{\n\
                         ::serde::Value::Object(__fields) if __fields.len() == 1 => {{\n\
                             let (__tag, __body) = &__fields[0];\n\
                             match __tag.as_str() {{\n\
                                 {struct_arms}\n\
                                 __other => Err(::serde::DeError::custom(format!(\n\
                                     \"unknown variant `{{__other}}` for enum {name}\"))),\n\
                             }}\n\
                         }}\n\
                         _ => Err(::serde::DeError::custom(\n\
                             \"expected string or single-key object for enum {name}\"\n\
                                 .to_string())),\n\
                     }}"
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_json_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match __v.as_str() {{\n\
                             Some(__s) => match __s {{\n\
                                 {unit_arms}\n\
                                 __other => Err(::serde::DeError::custom(format!(\n\
                                     \"unknown variant `{{__other}}` for enum {name}\"))),\n\
                             }},\n\
                             None => {none_arm},\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}
