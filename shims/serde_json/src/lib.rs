//! Minimal, dependency-free stand-in for `serde_json`.
//!
//! Renders and parses JSON text against the shimmed `serde` [`Value`] tree.
//! Supports the full JSON grammar (objects, arrays, strings with escapes,
//! numbers, booleans, null) — enough for config/report/model persistence.

use std::fmt;

use serde::{DeError, Deserialize, Serialize, Value};

/// Serialization / deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render_number(f: f64, out: &mut String) {
    if f == f.trunc() && f.abs() < 1e15 {
        // Keep integral floats recognisable and compact ("2" not "2.0" is
        // what upstream emits for integers; for floats it emits "2.0" — we
        // preserve the fractional marker so round-trips stay floats).
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn render(v: &Value, pretty: bool, indent: usize, out: &mut String) {
    let pad = |out: &mut String, level: usize| {
        if pretty {
            out.push('\n');
            for _ in 0..level {
                out.push_str("  ");
            }
        }
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => render_number(*f, out),
        Value::Str(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                render(item, pretty, indent + 1, out);
            }
            pad(out, indent);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                escape_into(key, out);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                render(val, pretty, indent + 1, out);
            }
            pad(out, indent);
            out.push('}');
        }
    }
}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_json_value(), false, 0, &mut out);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_json_value(), true, 0, &mut out);
    Ok(out)
}

pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

pub fn to_vec_pretty<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string_pretty(value).map(String::into_bytes)
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser { bytes: text.as_bytes(), pos: 0 }
    }

    fn err<T>(&self, msg: &str) -> Result<T> {
        Err(Error(format!("{msg} at byte {}", self.pos)))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected `{}`", b as char))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(other) => self.err(&format!("unexpected character `{}`", other as char)),
            None => self.err("unexpected end of input"),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.err(&format!("expected `{word}`"))
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return self.err("expected `,` or `}` in object"),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return self.err("expected `,` or `]` in array"),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u16> {
        if self.pos + 4 > self.bytes.len() {
            return self.err("truncated \\u escape");
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error("invalid \\u escape".into()))?;
        let code = u16::from_str_radix(hex, 16).map_err(|_| Error("invalid \\u escape".into()))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect a following \uXXXX.
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let lo = self.parse_hex4()?;
                                    let combined = 0x10000
                                        + (((hi as u32 - 0xD800) << 10) | (lo as u32 - 0xDC00));
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi as u32)
                            };
                            match ch {
                                Some(c) => out.push(c),
                                None => return self.err("invalid unicode escape"),
                            }
                            continue;
                        }
                        _ => return self.err("invalid escape sequence"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the maximal run of unescaped bytes in one
                    // append. `"` and `\` are ASCII, so splitting there
                    // keeps the run valid UTF-8 (input is a &str), and
                    // validating per run — not per character — keeps long
                    // strings linear.
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error("invalid utf-8".into()))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(i) = stripped.parse::<u64>() {
                    if i <= i64::MAX as u64 {
                        return Ok(Value::Int(-(i as i64)));
                    }
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

/// Parses a `Value` tree from JSON text.
pub fn parse_value(text: &str) -> Result<Value> {
    let mut parser = Parser::new(text);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return parser.err("trailing characters after JSON value");
    }
    Ok(value)
}

pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    Ok(T::from_json_value(&parse_value(text)?)?)
}

pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let text = std::str::from_utf8(bytes).map_err(|_| Error("input is not utf-8".into()))?;
    from_str(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f32).unwrap(), "2.0");
        assert_eq!(from_str::<f32>("2.0").unwrap(), 2.0);
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "quote:\" slash:\\ newline:\n tab:\t unicode:\u{1F600}\u{0007}".to_string();
        let json = to_string(&original).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), original);
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<Option<f32>> = vec![Some(1.25), None, Some(-3.0)];
        let json = to_string(&v).unwrap();
        let back: Vec<Option<f32>> = from_str(&json).unwrap();
        assert_eq!(back, v);

        let pairs: Vec<(usize, usize)> = vec![(1, 2), (3, 4)];
        let back: Vec<(usize, usize)> = from_str(&to_string(&pairs).unwrap()).unwrap();
        assert_eq!(back, pairs);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v: Vec<Vec<u32>> = vec![vec![1, 2], vec![], vec![3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<Vec<u32>> = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("{").is_err());
        assert!(from_str::<u32>("12 34").is_err());
        assert!(from_str::<u32>("\"unterminated").is_err());
        assert!(from_str::<Vec<u32>>("[1,]").is_err());
    }

    #[test]
    fn float_precision_survives() {
        for &f in &[std::f64::consts::PI, 1e-9, 123456.789, -0.001] {
            let back: f64 = from_str(&to_string(&f).unwrap()).unwrap();
            assert_eq!(back, f);
        }
        // f32 payloads routed through f64 must come back exact too.
        for &f in &[0.1f32, 3.4e37, -7.25e-3] {
            let back: f32 = from_str(&to_string(&f).unwrap()).unwrap();
            assert_eq!(back, f);
        }
    }
}
