//! Minimal, dependency-free stand-in for `rand_distr`.
//!
//! Implements exactly what the workspace consumes: [`Distribution`],
//! [`Normal`], and [`LogNormal`] for `f32`/`f64`. Normal deviates come from
//! the Box–Muller transform driven by the shimmed `rand` generator, so they
//! are deterministic for a fixed seed.

use std::fmt;

use rand::{Rng, RngCore};

/// Types that can produce samples of `T` from an RNG.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error for invalid distribution parameters (non-finite or negative scale).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NormalError;

impl fmt::Display for NormalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid normal distribution parameters")
    }
}

impl std::error::Error for NormalError {}

/// Float scalars the distributions are generic over.
pub trait NormalFloat: Copy {
    fn to_f64(self) -> f64;
    fn from_f64(v: f64) -> Self;
}

impl NormalFloat for f32 {
    fn to_f64(self) -> f64 {
        self as f64
    }
    fn from_f64(v: f64) -> Self {
        v as f32
    }
}

impl NormalFloat for f64 {
    fn to_f64(self) -> f64 {
        self
    }
    fn from_f64(v: f64) -> Self {
        v
    }
}

fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // Box-Muller: u1 in (0, 1] so the log is finite, u2 in [0, 1).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// The normal distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal<F> {
    mean: F,
    std_dev: F,
}

impl<F: NormalFloat> Normal<F> {
    pub fn new(mean: F, std_dev: F) -> Result<Self, NormalError> {
        if !mean.to_f64().is_finite() || !std_dev.to_f64().is_finite() || std_dev.to_f64() < 0.0 {
            return Err(NormalError);
        }
        Ok(Normal { mean, std_dev })
    }

    pub fn mean(&self) -> F {
        self.mean
    }

    pub fn std_dev(&self) -> F {
        self.std_dev
    }
}

impl<F: NormalFloat> Distribution<F> for Normal<F> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> F {
        F::from_f64(self.mean.to_f64() + self.std_dev.to_f64() * standard_normal(rng))
    }
}

/// The log-normal distribution: `exp(N(mu, sigma²))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal<F> {
    inner: Normal<F>,
}

impl<F: NormalFloat> LogNormal<F> {
    pub fn new(mu: F, sigma: F) -> Result<Self, NormalError> {
        Ok(LogNormal {
            inner: Normal::new(mu, sigma)?,
        })
    }
}

impl<F: NormalFloat> Distribution<F> for LogNormal<F> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> F {
        F::from_f64(self.inner.sample(rng).to_f64().exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Normal::new(0.0f32, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0f64, f64::INFINITY).is_err());
    }

    #[test]
    fn moments_roughly_match() {
        let mut rng = StdRng::seed_from_u64(11);
        let normal = Normal::new(3.0f64, 2.0).unwrap();
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| normal.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn lognormal_is_positive() {
        let mut rng = StdRng::seed_from_u64(12);
        let d = LogNormal::new(0.0f32, 1.0).unwrap();
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let d = Normal::new(0.0f32, 1.0).unwrap();
        let a: Vec<f32> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..32).map(|_| d.sample(&mut rng)).collect()
        };
        let b: Vec<f32> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..32).map(|_| d.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
