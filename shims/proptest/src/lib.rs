//! Minimal, dependency-free stand-in for `proptest`.
//!
//! Implements the macro and combinator surface the workspace's property
//! tests use: `proptest! { ... }` with an optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` / `prop_assume!`,
//! range strategies, tuples, [`Just`], `any::<bool>()`,
//! [`collection::vec`], [`sample::select`], `prop_map`, and
//! `prop_flat_map`.
//!
//! Unlike upstream there is no shrinking: a failing case panics with the
//! generating seed printed, which is reproducible because all generation is
//! driven by a fixed per-test seed derived from the test name.

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// A `prop_assert*` failed: the property is violated.
    Fail(String),
    /// A `prop_assume!` rejected the inputs: try another case.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn gen_value(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn gen_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn gen_value(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.gen_value(rng)).gen_value(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary_value(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut StdRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut StdRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    use super::*;

    /// Length specification accepted by [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "empty size range");
            SizeRange { lo, hi }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    /// A vector whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod sample {
    use super::*;

    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn gen_value(&self, rng: &mut StdRng) -> T {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }

    /// Uniformly selects one of the given options.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select: no options");
        Select { options }
    }
}

/// FNV-1a over the test name: a stable per-test seed so failures reproduce.
pub fn seed_for_test(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Creates the RNG for one generated case. Exposed for the macro only.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    StdRng::seed_from_u64(seed_for_test(test_name) ^ ((case as u64) << 32))
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
    /// Upstream exposes combinator modules under `prop::`; the crate root
    /// has the same layout, so the alias suffices.
    pub use crate as prop;
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left), stringify!($right), l
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(format!(
                "assumption failed: {}", stringify!($cond)
            )));
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut passed: u32 = 0;
            let mut case: u32 = 0;
            let mut rejected: u32 = 0;
            while passed < config.cases {
                assert!(
                    rejected < config.cases.saturating_mul(20) + 1000,
                    "proptest {}: too many rejected cases ({} rejects, {} passes)",
                    stringify!($name), rejected, passed,
                );
                let mut rng = $crate::case_rng(concat!(module_path!(), "::", stringify!($name)), case);
                case += 1;
                #[allow(clippy::redundant_closure_call)]
                let outcome: $crate::TestCaseResult = (|| -> $crate::TestCaseResult {
                    $(let $arg = $crate::Strategy::gen_value(&($strategy), &mut rng);)+
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => rejected += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => panic!(
                        "proptest {} failed on case {} (seeded by test name; rerun reproduces): {}",
                        stringify!($name), case - 1, msg,
                    ),
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples((a, b) in (0usize..10, 5u64..6), c in -1.0f32..1.0) {
            prop_assert!(a < 10);
            prop_assert_eq!(b, 5);
            prop_assert!((-1.0..1.0).contains(&c));
        }

        #[test]
        fn vec_and_select(
            v in prop::collection::vec(0usize..4, 2..6),
            pick in prop::sample::select(vec![10usize, 20, 30]),
            flag in any::<bool>()
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 4));
            prop_assert!([10, 20, 30].contains(&pick));
            prop_assert!(usize::from(flag) <= 1);
        }

        #[test]
        fn flat_map_threads_dependent_values(
            (len, v) in (1usize..8).prop_flat_map(|n| (Just(n), prop::collection::vec(0u64..100, n..=n)))
        ) {
            prop_assert_eq!(v.len(), len);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn early_return_ok_is_supported(x in 0usize..10) {
            if x > 100 {
                return Ok(());
            }
            prop_assert!(x < 10);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_header_is_honoured(_x in 0usize..10) {
            // Runs exactly 7 cases; nothing to assert beyond not panicking.
        }
    }

    #[test]
    #[should_panic(expected = "proptest always_fails failed")]
    fn failures_panic_with_context() {
        proptest! {
            // No #[test] attribute: this expands *inside* a test fn, where
            // inner #[test] items are unreachable by the harness.
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
