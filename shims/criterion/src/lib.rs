//! Minimal, dependency-free stand-in for `criterion`.
//!
//! Implements the API the workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], and the
//! `criterion_group!` / `criterion_main!` macros — over plain
//! `std::time::Instant` wall-clock measurement (median of `sample_size`
//! samples after a short calibration).
//!
//! Two environment variables tune the harness:
//! - `TAAMR_BENCH_FAST=1` shrinks the per-sample time budget ~10× so smoke
//!   scripts finish quickly.
//! - `TAAMR_BENCH_JSON=<path>` appends one JSON line
//!   `{"name": ..., "ns_per_iter": ...}` per benchmark, which
//!   `scripts/bench_smoke.sh` aggregates.

use std::fmt;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Drives one benchmark's measurement loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Identifies a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{parameter}", name.into()) }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Things usable as a benchmark name.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

fn fast_mode() -> bool {
    std::env::var("TAAMR_BENCH_FAST").map(|v| v == "1").unwrap_or(false)
}

/// Measures `ns/iter` for one closure: calibrate an iteration count that
/// fills the per-sample budget, then take the median of `sample_size` runs.
fn measure<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut routine: F) {
    let budget = if fast_mode() {
        Duration::from_millis(2)
    } else {
        Duration::from_millis(20)
    };

    // Calibration: grow the iteration count until one sample fills the budget.
    let mut iters: u64 = 1;
    let mut per_iter_ns: f64;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        routine(&mut b);
        per_iter_ns = b.elapsed.as_nanos() as f64 / iters as f64;
        if b.elapsed >= budget || iters >= 1 << 20 {
            break;
        }
        let target = (budget.as_nanos() as f64 / per_iter_ns.max(1.0)).ceil() as u64;
        iters = target.clamp(iters * 2, iters * 16).max(1);
    }

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size.max(1) {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        routine(&mut b);
        samples.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];

    println!(
        "{name:<40} time: {median:>12.1} ns/iter  ({} samples x {iters} iters)",
        samples.len()
    );
    if let Ok(path) = std::env::var("TAAMR_BENCH_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
            let _ = writeln!(file, "{{\"name\": {name:?}, \"ns_per_iter\": {median}}}");
        }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, routine: F) -> &mut Self {
        measure(name, self.sample_size, routine);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _criterion: self }
    }

    pub fn final_summary(&mut self) {}
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        measure(&full, self.sample_size, routine);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        measure(&full, self.sample_size, |b| routine(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Re-export used by benches that call `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function, mirroring upstream's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut criterion: $crate::Criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("grp");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::from_parameter(8), &8usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        group.bench_function("named", |b| b.iter(|| black_box(2) * 2));
        group.finish();
    }

    criterion_group!(benches, quick);

    criterion_group!(
        name = configured;
        config = Criterion::default().sample_size(2);
        targets = quick
    );

    #[test]
    fn harness_runs() {
        std::env::set_var("TAAMR_BENCH_FAST", "1");
        benches();
        configured();
    }
}
