//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! exact API surface it consumes: [`RngCore`], [`Rng`] (with `gen`,
//! `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`], the
//! [`rngs::StdRng`] generator, and [`seq::SliceRandom::shuffle`].
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a small, fast,
//! well-dispersed generator. It does **not** match upstream `rand`'s ChaCha12
//! stream; the workspace only relies on determinism for a fixed seed, which
//! this provides bit-for-bit across platforms and thread counts.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Scalars that can be drawn uniformly from a range.
///
/// The single blanket impl `Range<T>: SampleRange<T>` below keys range
/// element types to the output type during inference, matching upstream
/// rand's behaviour for expressions like `base + rng.gen_range(-0.05..0.05)`.
pub trait SampleUniform: Sized + PartialOrd {
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

fn sample_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Multiply-shift mapping of a 64-bit word onto [0, bound). The bias is at
    // most bound / 2^64, far below anything the workspace can observe.
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + sample_u64_below(rng, span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + sample_u64_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                loop {
                    let u = <$t as Standard>::sample_standard(rng);
                    let v = lo + u * (hi - lo);
                    // Guard against round-up onto the excluded endpoint.
                    if v < hi {
                        return v;
                    }
                }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, rng)
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of deterministic generators from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic generator: xoshiro256++ with SplitMix64 seeding.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling via Fisher–Yates.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..10).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 10);
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v: f32 = rng.gen_range(-0.25f32..0.75);
            assert!((-0.25..0.75).contains(&v));
            let w: f64 = rng.gen_range(2.0f64..=3.0);
            assert!((2.0..=3.0).contains(&w));
        }
    }

    #[test]
    fn int_ranges_cover_and_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left slice in order (astronomically unlikely)");
    }

    #[test]
    fn unit_floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..10_000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }
}
