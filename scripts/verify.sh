#!/usr/bin/env bash
# Repo verification gate: build, full test suite, serial-feature test pass,
# a kernel audit, and a panic audit.
#
# The panic audit counts `unwrap()` / `expect(` in the non-test code of the
# crates hardened for fault tolerance (taamr core, taamr-recsys,
# taamr-serve) and fails
# if the count grows past the audited baseline: the experiment pipeline and
# the pairwise trainers promise to degrade or return typed errors
# (PipelineError, TrainDiverged, PairwiseDiverged) rather than panic, so a
# new panicking call in those crates is a regression. `#[cfg(test)]` modules
# are exempt. If you removed panics, lower the baseline below.
#
# Usage: scripts/verify.sh [--quick]
#   --quick skips the release build (test profile only).

set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=${1:-}

# Audited shape-invariant expects that predate the fault-tolerance work
# (mostly "attack preserves the NCHW shape" style postconditions), plus the
# attack-abstraction invariants from the unified Attack trait: white-box
# pixel attacks cannot return an AttackError (only black-box query budgets
# can), and feature-row extraction preserves its row-major shape.
BASELINE_CORE=14
BASELINE_RECSYS=0
BASELINE_SERVE=0

panic_count() {
    local src=$1 n=0 c f
    while IFS= read -r f; do
        # Strip everything from the `#[cfg(test)]` module down — the audit
        # only covers production code paths.
        c=$(sed '/#\[cfg(test)\]/,$d' "$f" | grep -cE '\.unwrap\(\)|\.expect\(' || true)
        n=$((n + c))
    done < <(find "$src" -name '*.rs')
    echo "$n"
}

echo "== panic audit: crates/core, crates/recsys, crates/serve (non-test code)"
core=$(panic_count crates/core/src)
recsys=$(panic_count crates/recsys/src)
serve=$(panic_count crates/serve/src)
echo "crates/core: $core panicking calls (baseline $BASELINE_CORE)"
echo "crates/recsys: $recsys panicking calls (baseline $BASELINE_RECSYS)"
echo "crates/serve: $serve panicking calls (baseline $BASELINE_SERVE)"
if [ "$core" -gt "$BASELINE_CORE" ] || [ "$recsys" -gt "$BASELINE_RECSYS" ] \
    || [ "$serve" -gt "$BASELINE_SERVE" ]; then
    echo "panic audit failed: new unwrap()/expect( in non-test code."
    echo "Use typed errors (PipelineError / *Diverged) instead, or justify"
    echo "the invariant and bump the baseline in scripts/verify.sh."
    exit 1
fi
echo "panic audit clean"

# API-shape audit: the fallible API unification (PR 3) removed every
# panicking/fallible twin (`foo` + `try_foo`) from the public surface of the
# hardened crates. A reintroduced `pub fn try_*` alongside its non-try
# sibling is a regression: there must be exactly one, Result-returning,
# entry point per operation.
echo "== API-shape audit: no pub fn try_* twins in core/nn/recsys"
twins=0
for src in crates/core/src crates/nn/src crates/recsys/src; do
    while IFS=: read -r file _ name; do
        base=${name#try_}
        if grep -rqE "pub fn $base\b" "$src"; then
            echo "twin API in $src: pub fn try_$base next to pub fn $base ($file)"
            twins=1
        fi
    done < <(grep -rnoE 'pub fn try_[a-z_0-9]+' "$src" | sed 's/pub fn //')
done
if [ "$twins" -ne 0 ]; then
    echo "API-shape audit failed: collapse the pair into one Result-returning fn."
    exit 1
fi
echo "API-shape audit clean"

if [ "$QUICK" != "--quick" ]; then
    echo "== cargo build --release"
    cargo build --release
fi

echo "== cargo test -q (full workspace)"
cargo test -q

echo "== cargo test -p taamr --features serial -q (serial fallback)"
cargo test -p taamr --features serial -q

# Kernel audit: the packed-panel GEMM's bit-level contract (differential
# harness vs the canonical-order reference, plus the golden digests), run
# under the `serial` feature so the single-threaded schedule — the one the
# fixed-summation-order contract is defined against — is what gets checked.
echo "== kernel audit: differential + golden GEMM tests (serial feature)"
cargo test -p taamr-tensor --features serial -q \
    --test gemm_differential --test golden_kernel

# Scoring audit: the GEMM-backed ScoringEngine's bitwise contract — block
# scores, top-N lists and item ranks must match the scalar per-(user,item)
# path exactly for every model family — run under the `serial` feature so
# the reference schedule is what gets checked (the threaded schedules are
# covered by the same tests in the workspace pass above).
echo "== scoring audit: differential engine tests (serial feature)"
cargo test -p taamr-recsys --features serial -q --test scoring

# Attack audit: the unified Attack abstraction's contracts — every attacker
# family (white-box pixel, black-box SPSA, embedding-space) stays inside its
# declared Budget, perturbs bitwise-deterministically at 1/2/8 threads, and
# the over-budget black-box path degrades to a typed QueryBudgetExceeded
# error instead of panicking. Run under the default (threaded) and `serial`
# builds so neither schedule can hide a divergence.
echo "== attack audit: budget + determinism properties (default features)"
cargo test -p taamr-attack -q --test properties

echo "== attack audit: budget + determinism properties (serial feature)"
cargo test -p taamr-attack --features serial -q --test properties

# Replay audit: re-run the checked-in golden experiment records against the
# live pipeline and diff the per-stage content hashes. Any hash divergence —
# a determinism break anywhere from dataset synthesis through the attack
# cells to the final report — fails the gate with the first divergent stage
# named. Runs under both the default (threaded) and the `serial` build so a
# schedule-dependent divergence cannot hide behind either configuration.
echo "== replay audit: golden records, default build"
cargo run -q --release -p taamr-bench --bin replay -- verify tests/golden_records

echo "== replay audit: golden records, serial build"
cargo run -q --release -p taamr-bench --features taamr/serial --bin replay -- \
    verify tests/golden_records

# Serve audit: the serving layer's headline guarantees — crash recovery
# restores byte-identical scores from the snapshot, a hammered model swap
# shows no errors and a clean version cliff, coalesced batches and cache
# hits are bitwise identical to serial uncached scoring, and a version bump
# makes every cached top-N unreachable (hot_path) — re-run under the
# `serial` scoring feature as well as the default, so neither threading
# schedule can hide a supervision race or a batching divergence. (The full
# workspace pass above already ran every serve test once under the default
# features.)
echo "== serve audit: supervision + swap + hot-path tests (default features)"
cargo test -p taamr-serve -q --test supervision --test swap --test hot_path

echo "== serve audit: supervision + swap + hot-path tests (serial feature)"
cargo test -p taamr-serve --features serial -q --test supervision --test swap --test hot_path

# Scale audit: sharded scoring must be bitwise invisible — the shard-
# streaming drivers and the default-plan drivers land on identical lists
# and ranks for every model family, ragged shard height, and thread count,
# and the i8-quantized path stays deterministic above its pinned accuracy
# floor. Run under both the default (threaded) and `serial` builds so
# neither schedule can hide a shard-boundary divergence.
echo "== scale audit: sharded scoring differential (default features)"
cargo test -p taamr -q --test scale_grid

echo "== scale audit: sharded scoring differential (serial feature)"
cargo test -p taamr --features serial -q --test scale_grid

# Perf smoke: the gemm_256 dispatch-overhead guard self-skips without
# TAAMR_PERF_TESTS=1; enable it here where a release build is available.
# Smoke form (best-of-3 medians, 25% headroom) keeps it non-flaky on
# loaded boxes. On multi-core hosts the same binary also asserts gemm_256
# scales >= 1.5x at 8 threads; on single-core hosts that test self-skips
# with the reason printed.
if [ "$QUICK" != "--quick" ]; then
    echo "== perf smoke: gemm_256 dispatch overhead + scaling (TAAMR_PERF_TESTS=1)"
    TAAMR_PERF_TESTS=1 cargo test -p taamr --release -q --test perf_kernel
fi

echo "== cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "verify OK"
