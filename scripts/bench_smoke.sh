#!/usr/bin/env bash
# Smoke-runs the Criterion benches and emits BENCH_parallel.json.
#
# Each bench runs in fast mode (TAAMR_BENCH_FAST=1 shrinks the per-sample
# budget ~10x) and appends one JSON line per benchmark to a raw file
# (TAAMR_BENCH_JSON). This script aggregates those lines and pairs every
# `<workload>/serial` measurement with its `<workload>/parallel` twin (the
# `parallel_scaling` bench emits such pairs for GEMM, a PGD attack batch and
# CHR evaluation), reporting the speedup for each.
#
# On a single-core machine the speedups sit at ~1.0x by construction; the
# >=2x acceptance target applies to multi-core runners. Results are bitwise
# identical either way -- see "Parallelism & determinism" in DESIGN.md.
#
# It also runs the table1 experiment binary with telemetry on and copies the
# resulting span/counter snapshot to BENCH_obs.json (per-stage wall times in
# ns plus the full counter set from taamr-obs).
#
# Usage: scripts/bench_smoke.sh [output.json]
#   BENCHES="tensor_ops parallel_scaling" scripts/bench_smoke.sh   # subset

set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-BENCH_parallel.json}
BENCHES=${BENCHES:-"tensor_ops cnn_forward_backward attacks parallel_scaling"}
THREADS=${TAAMR_THREADS:-$(nproc)}
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

export TAAMR_BENCH_FAST=1
export TAAMR_BENCH_JSON="$RAW"

for bench in $BENCHES; do
    echo "== cargo bench -p taamr-bench --bench $bench"
    cargo bench -q -p taamr-bench --bench "$bench"
done

awk -v threads="$THREADS" '
{
    if (!match($0, /"name": *"[^"]*"/)) next
    name = substr($0, RSTART, RLENGTH)
    sub(/"name": *"/, "", name); sub(/"$/, "", name)
    if (!match($0, /"ns_per_iter": *[0-9.eE+-]+/)) next
    ns = substr($0, RSTART, RLENGTH)
    sub(/"ns_per_iter": */, "", ns)

    count++; names[count] = name; vals[count] = ns
    base = name
    if (sub(/\/serial$/, "", base)) serial[base] = ns
    else if (sub(/\/parallel$/, "", base)) {
        parallel[base] = ns
        pairs[++npairs] = base
    }
}
END {
    printf "{\n"
    printf "  \"threads\": %d,\n", threads
    printf "  \"benchmarks\": [\n"
    for (i = 1; i <= count; i++)
        printf "    {\"name\": \"%s\", \"ns_per_iter\": %s}%s\n", \
            names[i], vals[i], (i < count ? "," : "")
    printf "  ],\n"
    printf "  \"serial_vs_parallel\": [\n"
    for (i = 1; i <= npairs; i++) {
        b = pairs[i]
        if (!(b in serial)) continue
        speedup = (parallel[b] > 0) ? serial[b] / parallel[b] : 0
        printf "    {\"workload\": \"%s\", \"serial_ns\": %s, \"parallel_ns\": %s, \"speedup\": %.3f}%s\n", \
            b, serial[b], parallel[b], speedup, (i < npairs ? "," : "")
    }
    printf "  ]\n"
    printf "}\n"
}' "$RAW" > "$OUT"

echo "wrote $OUT (threads=$THREADS)"
awk '/"workload"/' "$OUT"

OBS_OUT=${TAAMR_BENCH_OBS:-BENCH_obs.json}
echo "== table1 --telemetry (per-stage wall times -> $OBS_OUT)"
TAAMR_SCALE=tiny cargo run -q --release -p taamr-bench --bin table1 -- \
    --telemetry --telemetry-out "$OBS_OUT" > /dev/null
echo "wrote $OBS_OUT"
