#!/usr/bin/env bash
# Smoke-runs the Criterion benches and emits BENCH_parallel.json.
#
# Each bench runs in fast mode (TAAMR_BENCH_FAST=1 shrinks the per-sample
# budget ~10x) and appends one JSON line per benchmark to a raw file
# (TAAMR_BENCH_JSON). This script aggregates those lines and pairs every
# `<workload>/serial` measurement with its `<workload>/parallel` twin (the
# `parallel_scaling` bench emits such pairs for GEMM, a PGD attack batch and
# CHR evaluation), reporting the speedup for each.
#
# On a single-core machine the speedups sit at ~1.0x by construction; the
# >=2x acceptance target applies to multi-core runners. Results are bitwise
# identical either way -- see "Parallelism & determinism" in DESIGN.md.
#
# It also emits BENCH_gemm_v2.json: the GEMM-kernel workloads measured by
# this run paired against the frozen v1 numbers (the naive-kernel baselines
# recorded in BENCH_parallel.json at commit 83fdde5, threads=1), with the
# speedup the packed-panel rewrite delivers on each.
#
# It also emits BENCH_scoring.json from the `scoring` bench: every
# `<workload>/pointwise` measurement paired with its `<workload>/engine`
# twin (full-catalog scoring and top-100 through the GEMM-backed
# ScoringEngine vs the scalar per-(user,item) path, both pinned to one
# thread so the speedup is purely algorithmic), plus the embedding-cache
# rebuild/hit costs. The engine speedups carry a >=5x acceptance target.
#
# It also emits BENCH_serve.json (schema 2) from the `serve_load` bin: five
# scenarios through the HTTP serving layer — close-per-request vs keep-alive
# connections on the same warm server, cold vs warm top-N result cache on a
# fresh one, and the kept-alive load under a crash storm (an actor kill
# every 25ms) — each row carrying its latency percentiles and the ledger
# deltas (reconnects, coalesced batches, cache hits/misses) it produced,
# plus the keep-alive and warm-cache headline speedups.
#
# Finally it runs the table1 experiment binary with telemetry on and copies
# the resulting span/counter snapshot to BENCH_obs.json (per-stage wall
# times in ns plus the full counter set from taamr-obs).
#
# Usage: scripts/bench_smoke.sh [output.json]
#   BENCHES="tensor_ops parallel_scaling" scripts/bench_smoke.sh   # subset

set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-BENCH_parallel.json}
BENCHES=${BENCHES:-"tensor_ops cnn_forward_backward attacks parallel_scaling scoring"}
THREADS=${TAAMR_THREADS:-$(nproc)}
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

export TAAMR_BENCH_FAST=1
export TAAMR_BENCH_JSON="$RAW"

for bench in $BENCHES; do
    echo "== cargo bench -p taamr-bench --bench $bench"
    cargo bench -q -p taamr-bench --bench "$bench"
done

awk -v threads="$THREADS" '
{
    if (!match($0, /"name": *"[^"]*"/)) next
    name = substr($0, RSTART, RLENGTH)
    sub(/"name": *"/, "", name); sub(/"$/, "", name)
    if (!match($0, /"ns_per_iter": *[0-9.eE+-]+/)) next
    ns = substr($0, RSTART, RLENGTH)
    sub(/"ns_per_iter": */, "", ns)

    count++; names[count] = name; vals[count] = ns
    base = name
    if (sub(/\/serial$/, "", base)) serial[base] = ns
    else if (sub(/\/parallel$/, "", base)) {
        parallel[base] = ns
        pairs[++npairs] = base
    }
}
END {
    printf "{\n"
    printf "  \"schema\": 1,\n"
    printf "  \"threads\": %d,\n", threads
    printf "  \"benchmarks\": [\n"
    for (i = 1; i <= count; i++)
        printf "    {\"name\": \"%s\", \"ns_per_iter\": %s}%s\n", \
            names[i], vals[i], (i < count ? "," : "")
    printf "  ],\n"
    printf "  \"serial_vs_parallel\": [\n"
    for (i = 1; i <= npairs; i++) {
        b = pairs[i]
        if (!(b in serial)) continue
        speedup = (parallel[b] > 0) ? serial[b] / parallel[b] : 0
        printf "    {\"workload\": \"%s\", \"serial_ns\": %s, \"parallel_ns\": %s, \"speedup\": %.3f}%s\n", \
            b, serial[b], parallel[b], speedup, (i < npairs ? "," : "")
    }
    printf "  ]\n"
    printf "}\n"
}' "$RAW" > "$OUT"

echo "wrote $OUT (threads=$THREADS)"
awk '/"workload"/' "$OUT"

# --- BENCH_gemm_v2.json: packed-panel kernel vs the frozen v1 baselines ---
GEMM_OUT=${TAAMR_BENCH_GEMM:-BENCH_gemm_v2.json}
awk -v threads="$THREADS" '
BEGIN {
    # v1 = naive kernel, BENCH_parallel.json @ 83fdde5 (threads=1).
    v1["gemm/32"] = 7651.68
    v1["gemm/64"] = 50770.8
    v1["gemm/128"] = 295128.4
    v1["gemm_64_bt"] = 204135
    v1["im2col_8x16x32x32_k3"] = 1802646
    v1["gemm_256/serial"] = 2902585
    v1["gemm_256/parallel"] = 3409929
    order[1] = "gemm/32"; order[2] = "gemm/64"; order[3] = "gemm/128"
    order[4] = "gemm_64_bt"; order[5] = "gemm_conv_16x144x4096"
    order[6] = "im2col_8x16x32x32_k3"
    order[7] = "gemm_256/serial"; order[8] = "gemm_256/parallel"
    norder = 8
}
{
    if (!match($0, /"name": *"[^"]*"/)) next
    name = substr($0, RSTART, RLENGTH)
    sub(/"name": *"/, "", name); sub(/"$/, "", name)
    if (!match($0, /"ns_per_iter": *[0-9.eE+-]+/)) next
    ns = substr($0, RSTART, RLENGTH)
    sub(/"ns_per_iter": */, "", ns)
    v2[name] = ns
}
END {
    printf "{\n"
    printf "  \"schema\": 1,\n"
    printf "  \"threads\": %d,\n", threads
    printf "  \"v1_source\": \"BENCH_parallel.json @ 83fdde5 (naive kernel, threads=1)\",\n"
    printf "  \"benchmarks\": [\n"
    first = 1
    for (i = 1; i <= norder; i++) {
        b = order[i]
        if (!(b in v2)) continue
        if (!first) printf ",\n"
        first = 0
        if (b in v1)
            printf "    {\"name\": \"%s\", \"v1_ns\": %s, \"v2_ns\": %s, \"speedup_vs_v1\": %.2f}", \
                b, v1[b], v2[b], v1[b] / v2[b]
        else
            printf "    {\"name\": \"%s\", \"v2_ns\": %s}", b, v2[b]
    }
    printf "\n  ],\n"
    if (("gemm_256/serial" in v2) && ("gemm_256/parallel" in v2))
        sp = v2["gemm_256/serial"] / v2["gemm_256/parallel"]
    else
        sp = 0
    printf "  \"gemm_256_parallel_over_serial_speedup\": %.3f\n", sp
    printf "}\n"
}' "$RAW" > "$GEMM_OUT"
echo "wrote $GEMM_OUT"
awk '/speedup/' "$GEMM_OUT"

# --- BENCH_scoring.json: GEMM-backed scoring engine vs the scalar path ---
SCORING_OUT=${TAAMR_BENCH_SCORING:-BENCH_scoring.json}
awk -v threads="$THREADS" '
{
    if (!match($0, /"name": *"[^"]*"/)) next
    name = substr($0, RSTART, RLENGTH)
    sub(/"name": *"/, "", name); sub(/"$/, "", name)
    if (!match($0, /"ns_per_iter": *[0-9.eE+-]+/)) next
    ns = substr($0, RSTART, RLENGTH)
    sub(/"ns_per_iter": */, "", ns)

    base = name
    if (sub(/\/pointwise$/, "", base)) pointwise[base] = ns
    else if (sub(/\/engine$/, "", base)) {
        engine[base] = ns
        pairs[++npairs] = base
    }
    if (name == "embed_cache/rebuild") rebuild = ns
    if (name == "embed_cache/hit") hit = ns
}
END {
    printf "{\n"
    printf "  \"schema\": 1,\n"
    printf "  \"threads_pinned\": 1,\n"
    printf "  \"pointwise_vs_engine\": [\n"
    for (i = 1; i <= npairs; i++) {
        b = pairs[i]
        if (!(b in pointwise)) continue
        speedup = (engine[b] > 0) ? pointwise[b] / engine[b] : 0
        printf "    {\"workload\": \"%s\", \"pointwise_ns\": %s, \"engine_ns\": %s, \"speedup\": %.3f}%s\n", \
            b, pointwise[b], engine[b], speedup, (i < npairs ? "," : "")
    }
    printf "  ],\n"
    printf "  \"embed_cache\": {\"rebuild_ns\": %s, \"hit_ns\": %s}\n", \
        (rebuild != "" ? rebuild : 0), (hit != "" ? hit : 0)
    printf "}\n"
}' "$RAW" > "$SCORING_OUT"
echo "wrote $SCORING_OUT"
awk '/speedup/' "$SCORING_OUT"

# --- BENCH_serve.json: serving-layer load scenarios (connection strategy,
# result cache, crash storm). TAAMR_BENCH_FAST is already exported, so this
# is the shrunk run; unset it and re-run serve_load by hand for the full
# checked-in numbers.
SERVE_OUT=${TAAMR_BENCH_SERVE:-BENCH_serve.json}
echo "== serve_load (keep-alive/cache/crash-storm scenarios -> $SERVE_OUT)"
cargo run -q --release -p taamr-bench --bin serve_load -- "$SERVE_OUT"
echo "wrote $SERVE_OUT"

# --- BENCH_scale.json: sharded-scoring scale grid (gemm_256 thread sweep +
# schedule ablation, users x items x threads top-N rows with their resident-
# score bounds, the headline sharded sweep, and i8-quant accuracy/size).
# TAAMR_BENCH_FAST shrinks the grid; unset it for the checked-in numbers.
SCALE_OUT=${TAAMR_BENCH_SCALE:-BENCH_scale.json}
echo "== scale_grid (sharded scoring scale grid -> $SCALE_OUT)"
cargo run -q --release -p taamr-bench --bin scale_grid -- "$SCALE_OUT"
echo "wrote $SCALE_OUT"

OBS_OUT=${TAAMR_BENCH_OBS:-BENCH_obs.json}
echo "== table1 --telemetry (per-stage wall times -> $OBS_OUT)"
TAAMR_SCALE=tiny cargo run -q --release -p taamr-bench --bin table1 -- \
    --telemetry --telemetry-out "$OBS_OUT" > /dev/null
echo "wrote $OBS_OUT"

# Every emitted summary must declare the schema version its consumers
# expect: the awk aggregations above pin summary schema 1 and the telemetry
# snapshot embeds TELEMETRY_SCHEMA. validate_bench re-parses each file and
# fails the run on a missing or mismatched declaration.
echo "== validate emitted BENCH_*.json schemas"
cargo run -q --release -p taamr-bench --bin validate_bench -- \
    "$OUT" "$GEMM_OUT" "$SCORING_OUT" "$SERVE_OUT" "$SCALE_OUT" "$OBS_OUT"
