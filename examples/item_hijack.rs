//! Item-to-item "hijack": the paper's future-work attack, implemented.
//!
//! Instead of steering a whole category toward a popular *class*, the
//! adversary perturbs one specific product's image so its deep features
//! match one specific *popular item* — inheriting that item's standing with
//! the recommender, even inside the same category.
//!
//! Run with:
//!
//! ```sh
//! TAAMR_SCALE=tiny cargo run --release --example item_hijack
//! ```

use taamr::{ExperimentScale, ModelKind, Pipeline, PipelineConfig};
use taamr_attack::Epsilon;

fn main() -> Result<(), taamr::PipelineError> {
    let scale = ExperimentScale::from_env();
    let config = PipelineConfig::for_scale(scale);
    eprintln!("building pipeline at {scale:?} scale…");
    let mut pipeline = Pipeline::build(&config)?;

    // Pick the victim: the item appearing most often in top-N lists; and the
    // source: an item of the same category that never appears.
    let lists = pipeline.top_n_lists(pipeline.model(ModelKind::Vbpr));
    let mut appearances = vec![0usize; pipeline.dataset().num_items()];
    for list in &lists {
        for &i in list {
            appearances[i] += 1;
        }
    }
    let victim = (0..appearances.len()).max_by_key(|&i| appearances[i]).expect("items exist");
    let victim_cat = pipeline.dataset().item_category(victim);
    let source = pipeline
        .dataset()
        .items_of_category(victim_cat)
        .into_iter()
        .filter(|&i| i != victim)
        .min_by_key(|&i| appearances[i])
        .expect("category has more than one item");

    println!(
        "victim: item {victim} ({}, in {} top-{} lists)",
        taamr_vision::Category::from_id(victim_cat).map(|c| c.name()).unwrap_or("?"),
        appearances[victim],
        config.chr_n
    );
    println!(
        "source: item {source} (same category, in {} lists)",
        appearances[source]
    );
    println!();
    println!(
        "{:>5} | {:>12} | {:>11} {:>11} | {:>11}",
        "ε", "feat. match", "rank before", "rank after", "victim rank"
    );
    for eps in Epsilon::paper_sweep() {
        let o = pipeline.run_item_to_item_attack(ModelKind::Vbpr, source, victim, eps);
        println!(
            "{:>5} | {:>11.1}% | {:>11.0} {:>11.0} | {:>11.0}",
            o.epsilon_255,
            o.feature_distance_reduction * 100.0,
            o.mean_rank_before,
            o.mean_rank_after,
            o.victim_mean_rank
        );
    }
    println!();
    println!("reading the table: 'feat. match' is how much of the feature distance to the");
    println!("victim the attack removed. Rank only moves by the *visual* share of the");
    println!("victim's advantage — the victim's collaborative parameters (item bias, latent");
    println!("factors) cannot be stolen through the image, which bounds this fine-grained");
    println!("attack exactly as the paper's future-work discussion anticipates. At tiny");
    println!("scale the visual pathway is weak; run with TAAMR_SCALE=medium to see a");
    println!("meaningful pull toward the victim's rank.");
    Ok(())
}
