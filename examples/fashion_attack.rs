//! The paper's headline scenario as a runnable walkthrough: an adversary
//! pushes a low-recommended fashion category (e.g. socks) toward a highly
//! recommended one (e.g. running shoes) by perturbing product images only.
//!
//! Sweeps both attacks over the paper's four ε budgets on one dataset and
//! prints a Table-II/III/IV-style summary, then shows the Fig. 2 single-item
//! story.
//!
//! Run with (expect a couple of minutes at medium scale):
//!
//! ```sh
//! TAAMR_SCALE=tiny cargo run --release --example fashion_attack
//! ```

use taamr::{AttackSpec, ExperimentScale, ModelKind, Pipeline, PipelineConfig};

fn main() -> Result<(), taamr::PipelineError> {
    let scale = ExperimentScale::from_env();
    let config = PipelineConfig::for_scale(scale);
    eprintln!("building pipeline at {scale:?} scale…");
    let mut pipeline = Pipeline::build(&config)?;
    eprintln!(
        "CNN holdout accuracy: {:.1}%",
        pipeline.cnn_holdout_accuracy() * 100.0
    );

    let (similar, dissimilar) = pipeline.select_scenarios(ModelKind::Vbpr);
    let scenario = similar.or(dissimilar).expect("a scenario exists");
    println!("attack scenario: {scenario} (semantically similar: {})", scenario.is_semantically_similar());
    println!();
    println!(
        "{:<6} {:>5} | {:>12} {:>12} | {:>9} | {:>8} {:>8} {:>8}",
        "attack", "ε", "CHR before", "CHR after", "success", "PSNR", "SSIM", "PSM"
    );

    for eps in [2.0, 4.0, 8.0, 16.0] {
        for attack in
            [AttackSpec::Fgsm { epsilon_255: eps }, AttackSpec::Pgd { epsilon_255: eps }]
        {
            let o = pipeline.run_attack(ModelKind::Vbpr, &attack, scenario)?;
            println!(
                "{:<6} {:>5} | {:>12.3} {:>12.3} | {:>8.1}% | {:>8.2} {:>8.4} {:>8.4}",
                o.attack,
                o.epsilon_255,
                o.chr_source_before,
                o.chr_source_after,
                o.success_rate * 100.0,
                o.visual.psnr,
                o.visual.ssim,
                o.visual.psm
            );
        }
    }

    // The Fig. 2 story: one item, before and after.
    println!();
    let fig = pipeline.figure2_example(ModelKind::Vbpr, scenario);
    println!("{fig}");
    Ok(())
}
