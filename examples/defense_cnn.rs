//! Feature-extractor defences: the paper's proposed future work, evaluated.
//!
//! Compares targeted PGD success probability against three CNNs trained on
//! the product catalog:
//!
//! 1. **vanilla** — standard supervised training (the paper's setting),
//! 2. **adversarially trained** — Madry-style fine-tuning on untargeted PGD
//!    examples,
//! 3. **distilled** — a student trained on temperature-softened teacher
//!    probabilities (defensive distillation).
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example defense_cnn
//! ```

use taamr_attack::{
    adversarial_finetune, AdversarialTrainingConfig, Attack, AttackGoal, Epsilon, Pgd, WhiteBox,
};
use taamr_nn::{
    distill, DistillConfig, ImageClassifier, LrSchedule, SgdConfig, TinyResNet,
    TinyResNetConfig, Trainer, TrainerConfig,
};
use taamr_tensor::seeded_rng;
use taamr_vision::{images_to_tensor, Category, ProductImageGenerator};

fn main() {
    let gen = ProductImageGenerator::new(24, 7);
    let cats = [Category::Sock, Category::RunningShoe, Category::AnalogClock, Category::Maillot];
    let mut rng = seeded_rng(0);

    // Training set: 4 categories × 24 renders.
    let mut images = Vec::new();
    let mut labels = Vec::new();
    for (label, &cat) in cats.iter().enumerate() {
        for k in 0..24u64 {
            images.push(gen.generate(cat, 1000 + k));
            labels.push(label);
        }
    }
    let train = images_to_tensor(&images);

    let arch = TinyResNetConfig {
        in_channels: 3,
        base_channels: 8,
        blocks_per_stage: 1,
        stages: 2,
        num_classes: cats.len(),
    };
    let sgd = SgdConfig {
        lr: 0.05,
        momentum: 0.9,
        weight_decay: 5e-4,
        schedule: LrSchedule::Constant,
    };
    let trainer = Trainer::new(TrainerConfig {
        epochs: 16,
        batch_size: 16,
        sgd: sgd.clone(),
        log_every: 0,
        divergence: Default::default(),
    });

    eprintln!("training the vanilla CNN…");
    let mut vanilla = TinyResNet::new(&arch, &mut rng);
    trainer.fit(&mut vanilla, &train, &labels, &mut rng).expect("training converges");

    eprintln!("adversarially fine-tuning a copy…");
    let mut hardened = TinyResNet::new(&arch, &mut seeded_rng(0));
    trainer.fit(&mut hardened, &train, &labels, &mut seeded_rng(0)).expect("training converges");
    let at_cfg = AdversarialTrainingConfig {
        epsilon: Epsilon::from_255(8.0),
        attack_steps: 5,
        adversarial_fraction: 1.0,
        epochs: 6,
        batch_size: 16,
        sgd: SgdConfig { lr: 0.01, ..sgd.clone() },
    };
    adversarial_finetune(&mut hardened, &train, &labels, &at_cfg, &mut rng);

    eprintln!("distilling a student at T = 5…");
    let mut student = TinyResNet::new(&arch, &mut seeded_rng(1));
    let d_cfg = DistillConfig {
        temperature: 5.0,
        epochs: 40,
        batch_size: 16,
        sgd: SgdConfig { lr: 0.05, ..sgd },
    };
    distill(&mut vanilla, &mut student, &train, &d_cfg, &mut rng);

    // Evaluation: clean accuracy + targeted PGD ε ∈ {4, 8, 16} success on
    // fresh source-category renders (Sock → Running Shoe).
    let fresh: Vec<taamr_vision::Image> =
        (0..16u64).map(|k| gen.generate(Category::Sock, 9000 + k)).collect();
    let fresh_batch = images_to_tensor(&fresh);
    let clean_all = {
        let mut imgs = Vec::new();
        let mut lbls = Vec::new();
        for (label, &cat) in cats.iter().enumerate() {
            for k in 0..10u64 {
                imgs.push(gen.generate(cat, 9000 + k));
                lbls.push(label);
            }
        }
        (images_to_tensor(&imgs), lbls)
    };

    println!(
        "{:<22} {:>10} | {:>8} {:>8} {:>8}",
        "model", "clean acc", "ε=4", "ε=8", "ε=16"
    );
    for (name, net) in [
        ("vanilla", &mut vanilla),
        ("adversarially trained", &mut hardened),
        ("distilled (T=5)", &mut student),
    ] {
        let preds = net.predict(&clean_all.0);
        let acc = preds.iter().zip(&clean_all.1).filter(|(p, l)| p == l).count() as f64
            / clean_all.1.len() as f64;
        let mut rates = Vec::new();
        for eps in [4.0, 8.0, 16.0] {
            let attack = Pgd::new(Epsilon::from_255(eps));
            let mut arng = seeded_rng(99);
            let adv = attack
                .perturb(&mut WhiteBox(net), &fresh_batch, AttackGoal::Targeted(1), &mut arng)
                .unwrap();
            rates.push(adv.success_rate());
        }
        println!(
            "{:<22} {:>9.1}% | {:>7.1}% {:>7.1}% {:>7.1}%",
            name,
            acc * 100.0,
            rates[0] * 100.0,
            rates[1] * 100.0,
            rates[2] * 100.0
        );
    }
    println!();
    println!("expected shape: adversarial training cuts targeted PGD success sharply;");
    println!("defensive distillation helps far less against an *iterative* attack —");
    println!("matching Carlini & Wagner's finding (cited by the paper) that distillation");
    println!("mainly masks single-step gradients and is not robust to PGD.");
}
