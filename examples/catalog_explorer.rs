//! Catalog explorer: renders the procedural product categories as ASCII art
//! and shows how separable their CNN features are — a window into the
//! substrate that replaces the paper's Amazon product photos.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example catalog_explorer
//! ```

use taamr_nn::{
    ImageClassifier, LrSchedule, SgdConfig, TinyResNet, TinyResNetConfig, Trainer, TrainerConfig,
};
use taamr_tensor::seeded_rng;
use taamr_vision::{images_to_tensor, Category, Image, ProductImageGenerator};

/// Renders an image as ASCII using mean-channel luminance.
fn ascii(img: &Image) -> String {
    const RAMP: &[u8] = b" .:-=+*#%@";
    let mut out = String::new();
    for y in 0..img.height() {
        for x in 0..img.width() {
            let lum = (img.pixel(0, y, x) + img.pixel(1, y, x) + img.pixel(2, y, x)) / 3.0;
            let idx = ((1.0 - lum) * (RAMP.len() - 1) as f32).round() as usize;
            out.push(RAMP[idx.min(RAMP.len() - 1)] as char);
            out.push(RAMP[idx.min(RAMP.len() - 1)] as char); // square aspect
        }
        out.push('\n');
    }
    out
}

fn main() {
    let gen = ProductImageGenerator::new(24, 42);

    // 1. Show one render per category.
    for cat in [Category::Sock, Category::RunningShoe, Category::AnalogClock, Category::Brassiere]
    {
        println!("=== {cat} ===");
        println!("{}", ascii(&gen.generate(cat, 1)));
    }

    // 2. Train a small CNN briefly and report per-category accuracy.
    eprintln!("training a small CNN on the catalog (a few seconds)…");
    let mut rng = seeded_rng(0);
    let arch = TinyResNetConfig {
        in_channels: 3,
        base_channels: 8,
        blocks_per_stage: 1,
        stages: 2,
        num_classes: Category::COUNT,
    };
    let mut net = TinyResNet::new(&arch, &mut rng);
    let mut images = Vec::new();
    let mut labels = Vec::new();
    for cat in Category::ALL {
        for k in 0..20u64 {
            images.push(gen.generate(cat, 1000 + k));
            labels.push(cat.id());
        }
    }
    let trainer = Trainer::new(TrainerConfig {
        epochs: 6,
        batch_size: 16,
        sgd: SgdConfig { lr: 0.05, momentum: 0.9, weight_decay: 5e-4, schedule: LrSchedule::Constant },
        log_every: 1,
        divergence: Default::default(),
    });
    trainer.fit(&mut net, &images_to_tensor(&images), &labels, &mut rng).expect("training converges");

    println!("\nper-category accuracy on fresh renders:");
    for cat in Category::ALL {
        let fresh: Vec<Image> = (0..10u64).map(|k| gen.generate(cat, 5000 + k)).collect();
        let preds = net.predict(&images_to_tensor(&fresh));
        let correct = preds.iter().filter(|&&p| p == cat.id()).count();
        println!("  {:<16} {:>3}/10", cat.name(), correct);
    }
}
