//! Defence evaluation: how much protection does AMR's adversarial training
//! buy against TAaMR, compared to plain VBPR?
//!
//! Reproduces the paper's RQ1 observation that "the integration of the
//! adversarial regularizer makes AMR less affected by the attacks compared
//! to VBPR, but it is not completely safe", by attacking both models with
//! the same images and comparing the CHR lift.
//!
//! Run with:
//!
//! ```sh
//! TAAMR_SCALE=tiny cargo run --release --example defense_amr
//! ```

use taamr::{AttackSpec, ExperimentScale, ModelKind, Pipeline, PipelineConfig};

fn main() -> Result<(), taamr::PipelineError> {
    let scale = ExperimentScale::from_env();
    let config = PipelineConfig::for_scale(scale);
    eprintln!("building pipeline at {scale:?} scale…");
    let mut pipeline = Pipeline::build(&config)?;

    println!(
        "AMR adversarial regulariser: γ = {}, η = {} (paper's setting)",
        config.amr.gamma, config.amr.eta
    );
    println!();
    println!(
        "{:<6} {:>5} | {:>13} {:>13} | {:>13}",
        "model", "ε", "CHR before", "CHR after", "lift (Δ CHR)"
    );

    for kind in ModelKind::ALL {
        let (similar, dissimilar) = pipeline.select_scenarios(kind);
        let Some(scenario) = similar.or(dissimilar) else {
            println!("{:<6}   no attackable scenario", kind.name());
            continue;
        };
        for eps in [8.0, 16.0] {
            let attack = AttackSpec::Pgd { epsilon_255: eps };
            let o = pipeline.run_attack(kind, &attack, scenario)?;
            println!(
                "{:<6} {:>5} | {:>13.3} {:>13.3} | {:>+13.3}",
                kind.name(),
                o.epsilon_255,
                o.chr_source_before,
                o.chr_source_after,
                o.chr_source_after - o.chr_source_before
            );
        }
    }

    println!();
    println!("expected shape (paper Table II): AMR's lift is much smaller than VBPR's,");
    println!("but usually not zero — adversarial training on *feature* perturbations");
    println!("only partially transfers to *image-space* targeted attacks.");
    Ok(())
}
