//! Quickstart: build the whole TAaMR system at test scale and run one
//! targeted attack, printing each stage's key numbers.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use taamr::{AttackSpec, ExperimentScale, ModelKind, Pipeline, PipelineError};
use taamr_attack::Epsilon;

fn main() -> Result<(), PipelineError> {
    // 1. Build everything: synthetic data, CNN, catalog, features, VBPR, AMR.
    //    Tiny scale keeps this to a couple of seconds. The builder starts
    //    from a scale preset; set TAAMR_OBS=1 (or call `.obs(true)`) to also
    //    collect span/counter telemetry — it never changes the numbers.
    taamr_obs::init_from_env();
    let builder = Pipeline::builder().scale(ExperimentScale::Tiny);
    let config = builder.clone().into_config();
    println!("building pipeline ({} users requested)…", config.dataset.num_users);
    let mut pipeline = builder.build()?;

    let stats = pipeline.dataset().stats(&config.dataset.name);
    println!("dataset: {stats}");
    println!(
        "CNN: train accuracy {:.1}%, holdout accuracy {:.1}%",
        pipeline.cnn_train_accuracy() * 100.0,
        pipeline.cnn_holdout_accuracy() * 100.0
    );

    // 2. Baseline Category Hit Ratios: which categories dominate the top-N?
    let chr = pipeline.chr_per_category(pipeline.model(ModelKind::Vbpr));
    println!("\nbaseline CHR@{} per category (×100):", config.chr_n);
    for (c, v) in chr.iter().enumerate() {
        let name = taamr_vision::Category::from_id(c).map(|c| c.name()).unwrap_or("?");
        println!("  {name:<16} {v:>7.3}");
    }

    // 3. Pick the paper's scenario (low-CHR source → high-CHR target) and
    //    attack the source category's images with PGD at ε = 8.
    let (similar, dissimilar) = pipeline.select_scenarios(ModelKind::Vbpr);
    let scenario = similar.or(dissimilar).expect("a scenario exists");
    println!("\nattack scenario: {scenario}");
    let attack = AttackSpec::Pgd { epsilon_255: 8.0 };
    let outcome = pipeline.run_attack(ModelKind::Vbpr, &attack, scenario)?;
    println!(
        "{} {}: attacked {} items, success rate {:.1}%",
        outcome.attack,
        Epsilon::from_255(outcome.epsilon_255),
        outcome.attacked_items,
        outcome.success_rate * 100.0
    );
    println!(
        "CHR@{} of {}: {:.3} → {:.3}",
        config.chr_n, outcome.source, outcome.chr_source_before, outcome.chr_source_after
    );
    println!(
        "visual quality: PSNR {:.1} dB, SSIM {:.4}, PSM {:.4}",
        outcome.visual.psnr, outcome.visual.ssim, outcome.visual.psm
    );

    if taamr_obs::enabled() {
        println!("
telemetry:
{}", taamr_obs::snapshot().summary());
    }
    Ok(())
}
