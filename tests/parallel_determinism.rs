//! Cross-thread-count determinism: the whole pipeline — CNN training,
//! feature extraction, recommender training, attacks, CHR evaluation —
//! must produce bit-for-bit identical results at 1, 2 and 8 threads.
//!
//! This is the system-level check of the contract documented in
//! [`taamr::parallel`]: parallelism is a pure scheduling knob. Every
//! parallel path splits work into pieces whose floating-point accumulation
//! order is split-invariant and collects results in input order, and every
//! attacked item derives its own RNG stream from
//! `item_seed(master, item_id)`, so thread count can never leak into any
//! number the paper's tables report.

use taamr::parallel::with_threads;
use taamr::{ExperimentScale, ModelKind, Pipeline, PipelineConfig};
use taamr_attack::{Epsilon, Pgd};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

#[test]
fn full_experiment_report_is_bitwise_identical_across_thread_counts() {
    let config = PipelineConfig::for_scale(ExperimentScale::Tiny);
    let reports: Vec<String> = THREAD_COUNTS
        .iter()
        .map(|&t| {
            with_threads(t, || {
                let mut pipeline = Pipeline::build(&config).unwrap();
                serde_json::to_string(&pipeline.run_paper_experiment(None).unwrap())
                    .expect("report serialises")
            })
        })
        .collect();
    assert_eq!(reports[0], reports[1], "1 vs 2 threads");
    assert_eq!(reports[0], reports[2], "1 vs 8 threads");
}

#[test]
fn build_attack_and_rankings_are_bitwise_identical_across_thread_counts() {
    // Finer-grained than the full report: pin down exactly which stage
    // diverges if the report-level test ever fails.
    let config = PipelineConfig::for_scale(ExperimentScale::Tiny);
    struct Probe {
        features: Vec<f32>,
        lists: Vec<Vec<usize>>,
        chr: Vec<f64>,
        outcome: String,
        figure2: String,
    }
    let probe = |threads: usize| -> Probe {
        with_threads(threads, || {
            let mut pipeline = Pipeline::build(&config).unwrap();
            let (similar, dissimilar) = pipeline.select_scenarios(ModelKind::Vbpr);
            let scenario = similar.or(dissimilar).expect("scenario exists");
            let outcome = pipeline
                .run_attack(ModelKind::Vbpr, &Pgd::new(Epsilon::from_255(8.0)), scenario)
                .unwrap();
            let figure2 = pipeline.figure2_example(ModelKind::Vbpr, scenario);
            Probe {
                features: pipeline.clean_features().to_vec(),
                lists: pipeline.top_n_lists(pipeline.model(ModelKind::Vbpr)),
                chr: pipeline.chr_per_category(pipeline.model(ModelKind::Vbpr)),
                outcome: serde_json::to_string(&outcome).expect("outcome serialises"),
                figure2: figure2.to_string(),
            }
        })
    };
    let baseline = probe(THREAD_COUNTS[0]);
    for &threads in &THREAD_COUNTS[1..] {
        let p = probe(threads);
        assert_eq!(p.features, baseline.features, "features @ {threads} threads");
        assert_eq!(p.lists, baseline.lists, "top-N lists @ {threads} threads");
        assert_eq!(p.chr, baseline.chr, "CHR @ {threads} threads");
        assert_eq!(p.outcome, baseline.outcome, "attack outcome @ {threads} threads");
        assert_eq!(p.figure2, baseline.figure2, "figure 2 @ {threads} threads");
    }
}
