//! Cross-thread-count determinism: the whole pipeline — CNN training,
//! feature extraction, recommender training, attacks, CHR evaluation —
//! must produce bit-for-bit identical results at 1, 2 and 8 threads.
//!
//! This is the system-level check of the contract documented in
//! [`taamr::parallel`]: parallelism is a pure scheduling knob. Every
//! parallel path splits work into pieces whose floating-point accumulation
//! order is split-invariant and collects results in input order, and every
//! attacked item derives its own RNG stream from
//! `Attack::item_seed(master, item_id)`, so thread count can never leak into
//! any number the paper's tables report.

use taamr::parallel::with_threads;
use taamr::{AttackSpec, ExperimentScale, ModelKind, Pipeline, PipelineConfig};
use taamr_tensor::{conv_scratch_footprint, gemm, seeded_rng, Tensor, Transpose};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

#[test]
fn gemm_kernel_is_bitwise_identical_across_thread_counts() {
    // Kernel-level version of the pipeline tests below: the packed-panel
    // GEMM promises a fixed per-element summation order, so its output bits
    // may not depend on how panels were handed to threads. Shapes cover the
    // row-panel schedule (the cube), the column-stripe schedule (short and
    // wide at 8 threads), and both transposed operand layouts.
    for &(m, k, n, ta, tb) in &[
        (256usize, 256usize, 256usize, Transpose::No, Transpose::No),
        (256, 256, 256, Transpose::Yes, Transpose::Yes),
        (16, 144, 4096, Transpose::No, Transpose::No),
        (16, 144, 4096, Transpose::Yes, Transpose::No),
    ] {
        let a = match ta {
            Transpose::No => Tensor::rand_uniform(&[m, k], -1.0, 1.0, &mut seeded_rng(21)),
            Transpose::Yes => Tensor::rand_uniform(&[k, m], -1.0, 1.0, &mut seeded_rng(21)),
        };
        let b = match tb {
            Transpose::No => Tensor::rand_uniform(&[k, n], -1.0, 1.0, &mut seeded_rng(22)),
            Transpose::Yes => Tensor::rand_uniform(&[n, k], -1.0, 1.0, &mut seeded_rng(22)),
        };
        let c0 = Tensor::rand_uniform(&[m, n], -1.0, 1.0, &mut seeded_rng(23));
        let bits = |threads: usize| -> Vec<u32> {
            with_threads(threads, || {
                let mut c = c0.clone();
                gemm(1.5, &a, ta, &b, tb, 0.5, &mut c).unwrap();
                c.iter().map(|v| v.to_bits()).collect()
            })
        };
        let baseline = bits(THREAD_COUNTS[0]);
        for &threads in &THREAD_COUNTS[1..] {
            assert_eq!(
                bits(threads),
                baseline,
                "gemm bits @ {threads} threads, m={m} k={k} n={n} ta={ta:?} tb={tb:?}"
            );
        }
    }
}

#[test]
fn conv_scratch_is_reused_not_regrown_across_attacks() {
    // The allocation-free conv path keeps its transient matrices in a
    // thread-local scratch arena. Steady state means the arena reaches its
    // high-water mark during the first attack and never grows again: a
    // second identical attack must leave the footprint exactly where the
    // first did. Run serially so the attack loop stays on this thread and
    // the probe observes the arena the conv layers actually used.
    let config = PipelineConfig::for_scale(ExperimentScale::Tiny);
    with_threads(1, || {
        let mut pipeline = Pipeline::build(&config).unwrap();
        let (similar, dissimilar) = pipeline.select_scenarios(ModelKind::Vbpr);
        let scenario = similar.or(dissimilar).expect("scenario exists");
        let attack = AttackSpec::Pgd { epsilon_255: 8.0 };

        pipeline.run_attack(ModelKind::Vbpr, &attack, scenario).unwrap();
        let after_first = conv_scratch_footprint();
        assert!(after_first > 0, "conv path should have warmed the scratch arena");

        let outcome1 = pipeline.run_attack(ModelKind::Vbpr, &attack, scenario).unwrap();
        let after_second = conv_scratch_footprint();
        assert_eq!(
            after_first, after_second,
            "second identical attack must reuse the conv scratch, not regrow it"
        );

        // Reuse must also be invisible: a third run still lands on the same
        // outcome as the second.
        let outcome2 = pipeline.run_attack(ModelKind::Vbpr, &attack, scenario).unwrap();
        assert_eq!(
            serde_json::to_string(&outcome1).unwrap(),
            serde_json::to_string(&outcome2).unwrap(),
            "scratch reuse changed the attack outcome"
        );
    });
}

#[test]
fn full_experiment_report_is_bitwise_identical_across_thread_counts() {
    let config = PipelineConfig::for_scale(ExperimentScale::Tiny);
    let reports: Vec<String> = THREAD_COUNTS
        .iter()
        .map(|&t| {
            with_threads(t, || {
                let mut pipeline = Pipeline::build(&config).unwrap();
                serde_json::to_string(&pipeline.run_paper_experiment(None).unwrap())
                    .expect("report serialises")
            })
        })
        .collect();
    assert_eq!(reports[0], reports[1], "1 vs 2 threads");
    assert_eq!(reports[0], reports[2], "1 vs 8 threads");
}

#[test]
fn build_attack_and_rankings_are_bitwise_identical_across_thread_counts() {
    // Finer-grained than the full report: pin down exactly which stage
    // diverges if the report-level test ever fails.
    let config = PipelineConfig::for_scale(ExperimentScale::Tiny);
    struct Probe {
        features: Vec<f32>,
        lists: Vec<Vec<usize>>,
        chr: Vec<f64>,
        outcome: String,
        figure2: String,
    }
    let probe = |threads: usize| -> Probe {
        with_threads(threads, || {
            let mut pipeline = Pipeline::build(&config).unwrap();
            let (similar, dissimilar) = pipeline.select_scenarios(ModelKind::Vbpr);
            let scenario = similar.or(dissimilar).expect("scenario exists");
            let outcome = pipeline
                .run_attack(ModelKind::Vbpr, &AttackSpec::Pgd { epsilon_255: 8.0 }, scenario)
                .unwrap();
            let figure2 = pipeline.figure2_example(ModelKind::Vbpr, scenario);
            Probe {
                features: pipeline.clean_features().to_vec(),
                lists: pipeline.top_n_lists(pipeline.model(ModelKind::Vbpr)),
                chr: pipeline.chr_per_category(pipeline.model(ModelKind::Vbpr)),
                outcome: serde_json::to_string(&outcome).expect("outcome serialises"),
                figure2: figure2.to_string(),
            }
        })
    };
    let baseline = probe(THREAD_COUNTS[0]);
    for &threads in &THREAD_COUNTS[1..] {
        let p = probe(threads);
        assert_eq!(p.features, baseline.features, "features @ {threads} threads");
        assert_eq!(p.lists, baseline.lists, "top-N lists @ {threads} threads");
        assert_eq!(p.chr, baseline.chr, "CHR @ {threads} threads");
        assert_eq!(p.outcome, baseline.outcome, "attack outcome @ {threads} threads");
        assert_eq!(p.figure2, baseline.figure2, "figure 2 @ {threads} threads");
    }
}
