//! Golden-record replay: the end-to-end determinism lock.
//!
//! The checked-in records under `tests/golden_records/` pin the content
//! hash of every pipeline-level command — dataset, CNN, features, VBPR
//! warm-up, VBPR, AMR, five attack cells (four white-box pixel cells plus
//! one black-box SPSA cell), report — for two tiny-scale profiles. Replaying means re-running the live pipeline under a fresh
//! recorder and diffing command streams; any determinism-breaking change
//! to gemm, scoring, checkpointing, or RNG derivation fails here with the
//! *first* divergent stage named, at both 1 and 8 threads.
//!
//! After an intentional numerics change, regenerate with
//! `cargo run --release -p taamr-bench --bin replay -- regen tests/golden_records`.

use std::path::PathBuf;

use taamr::golden::GoldenProfile;
use taamr::parallel::with_threads;
use taamr_fault::{FaultPlan, FaultSite};
use taamr_replay::{diff, read_record, ExperimentRecord};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden_records")
}

fn golden(profile: &GoldenProfile) -> ExperimentRecord {
    read_record(&golden_dir().join(profile.file_name()))
        .expect("checked-in golden record reads cleanly")
}

#[test]
fn golden_records_replay_bit_identically_at_1_and_8_threads() {
    for profile in GoldenProfile::all() {
        let record = golden(&profile);
        assert_eq!(record.commands.len(), 12, "6 build stages + 5 cells + report");
        for threads in [1usize, 8] {
            let replayed = with_threads(threads, || {
                profile.run_recorded().expect("golden profile re-runs")
            });
            let report = diff(&record, &replayed);
            assert!(
                report.is_match(),
                "'{}' diverged at {threads} thread(s): {report}",
                profile.name
            );
            assert_eq!(report.matched, record.commands.len());
        }
    }
}

#[test]
fn replay_traverses_the_sharded_scoring_driver_and_still_matches() {
    // Since the user-shard streaming landed, `par_top_n_all` runs every
    // evaluation through `ShardPlan`-bounded blocks. This test makes that
    // coverage explicit rather than incidental: the live re-run must both
    // stream at least one shard (telemetry proves the sharded driver ran)
    // and still land on the checked-in command hashes, at 1 and 8 threads.
    let profile = GoldenProfile::by_name("tiny-men").expect("profile exists");
    let record = golden(&profile);
    for threads in [1usize, 8] {
        let (replayed, shards) = with_threads(threads, || {
            taamr_obs::reset();
            taamr_obs::set_enabled(true);
            let replayed = profile.run_recorded().expect("golden profile re-runs");
            let shards =
                taamr_obs::snapshot().counter("scoring_shards").unwrap_or(0);
            taamr_obs::set_enabled(false);
            taamr_obs::reset();
            (replayed, shards)
        });
        assert!(shards > 0, "replay at {threads} thread(s) never streamed a shard");
        let report = diff(&record, &replayed);
        assert!(
            report.is_match(),
            "sharded scoring changed golden hashes at {threads} thread(s): {report}"
        );
    }
}

#[test]
fn corrupting_any_command_hash_reports_that_command_as_first_divergent() {
    // Pure diff-level check across *every* stage of *every* record: flip
    // one bit of command i's hash and the diff must localise the
    // divergence to exactly index i with its stage label.
    for profile in GoldenProfile::all() {
        let record = golden(&profile);
        for i in 0..record.commands.len() {
            let mut corrupt = record.clone();
            let hash = u64::from_str_radix(&corrupt.commands[i].output_hash, 16)
                .expect("stored hash is hex");
            corrupt.commands[i].output_hash = taamr_replay::hex64(hash ^ (1 << 5));
            let report = diff(&record, &corrupt);
            let d = report.divergence.unwrap_or_else(|| {
                panic!("'{}' command {i}: corruption went undetected", profile.name)
            });
            assert_eq!(d.index, i, "wrong divergence index for '{}'", profile.name);
            assert_eq!(d.stage, record.commands[i].label, "wrong stage named");
            assert_eq!(report.matched, i, "every command before {i} must match");
        }
    }
}

#[test]
fn injected_recorder_fault_diverges_at_the_faulted_stage_only() {
    // Live fault injection: a FaultSite::ReplayHash plan corrupts the
    // recorded hash of command 5 (the "amr" train stage) during a real
    // re-run. The diff against the checked-in golden must blame exactly
    // that stage — proving divergence localisation works on live replays,
    // not just on doctored records.
    let profile = GoldenProfile::by_name("tiny-men").expect("profile exists");
    let record = golden(&profile);
    const FAULT_INDEX: usize = 5;
    let (replayed, unfired) =
        taamr_fault::with_plan(FaultPlan::new().with(FaultSite::ReplayHash, FAULT_INDEX as u64), || {
            profile.run_recorded().expect("profile re-runs")
        });
    assert_eq!(unfired, 0, "the injected fault must have fired");
    let report = diff(&record, &replayed);
    let d = report.divergence.expect("corrupted replay must diverge");
    assert_eq!(d.index, FAULT_INDEX);
    assert_eq!(d.stage, record.commands[FAULT_INDEX].label);
    assert_eq!(d.stage, "amr", "command 5 is the AMR train stage");
    assert_eq!(report.matched, FAULT_INDEX, "stages before the fault must all match");
}

#[test]
fn golden_metadata_matches_the_live_profiles() {
    // The records must belong to the profiles this build defines: same
    // seed and same config fingerprint. A config drift (new field, changed
    // preset) shows up here as a metadata mismatch before any replay runs.
    for profile in GoldenProfile::all() {
        let record = golden(&profile);
        assert_eq!(record.name, profile.name);
        assert_eq!(record.seed, profile.config().seed);
        assert_eq!(
            record.config_fingerprint,
            taamr_replay::hex64(taamr::config_fingerprint(profile.config())),
            "'{}': golden record was written under a different configuration — \
             regenerate with the replay bin if the change was intentional",
            profile.name
        );
    }
}

#[test]
fn on_disk_corruption_of_a_golden_record_fails_its_checksum() {
    // End-to-end file-level story: copy a golden record, flip one payload
    // bit, and the reader must refuse it with a checksum error rather
    // than replaying garbage.
    let src = golden_dir().join("tiny-men.rec");
    let dir = std::env::temp_dir().join("taamr-replay-golden-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let dst = dir.join("tiny-men-corrupt.rec");
    std::fs::copy(&src, &dst).expect("copy golden record");
    let len = std::fs::read(&dst).expect("read").len();
    taamr_fault::flip_bit(&dst, len - 4, 1).expect("flip");
    assert!(
        matches!(read_record(&dst), Err(taamr_replay::RecordError::ChecksumMismatch)),
        "bit-flipped golden record must fail its checksum"
    );
    std::fs::remove_file(&dst).ok();
}
