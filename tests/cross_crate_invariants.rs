//! Cross-crate integration tests: invariants that only hold when the
//! substrates agree with each other (shapes, layouts, metric conventions).

use std::collections::HashSet;

use taamr::{extract_features, CatalogImages};
use taamr_data::{leave_one_out, SyntheticConfig, SyntheticDataset};
use taamr_metrics::chr::category_hit_ratio_all;
use taamr_metrics::image::{psnr, ssim};
use taamr_metrics::ranking::{hit_ratio, ndcg, pairwise_auc};
use taamr_metrics::{category_hit_ratio, psm};
use taamr_nn::{ImageClassifier, TinyResNet, TinyResNetConfig};
use taamr_recsys::{BprMf, PairwiseConfig, PairwiseTrainer, Recommender, Vbpr, VbprConfig};
use taamr_tensor::seeded_rng;
use taamr_vision::{images_to_tensor, tensor_to_images, Category, ProductImageGenerator};

#[test]
fn image_tensor_layout_matches_cnn_expectations() {
    // A pixel written through the Image API must land at the NCHW position
    // the CNN reads: channel-major, row, column.
    let mut img = taamr_vision::Image::new(16);
    img.set_pixel(2, 5, 7, 0.9); // blue channel
    let batch = images_to_tensor(&[img]);
    assert_eq!(batch.at(&[0, 2, 5, 7]), 0.9);
    assert_eq!(batch.at(&[0, 0, 5, 7]), 0.0);
    // And back.
    let round = tensor_to_images(&batch).unwrap();
    assert_eq!(round[0].pixel(2, 5, 7), 0.9);
}

#[test]
fn extracted_features_slot_into_vbpr_rows() {
    // Feature row i of the extraction matrix must be exactly what VBPR
    // stores and returns for item i.
    let gen = ProductImageGenerator::new(16, 5);
    let dataset = taamr_data::ImplicitDataset::new(
        vec![vec![0, 1, 2, 3, 4]],
        vec![0, 1, 2, 3, 4],
        Category::COUNT,
    );
    let catalog = CatalogImages::render(&dataset, &gen);
    let net = TinyResNet::new(&TinyResNetConfig::tiny_for_tests(Category::COUNT), &mut seeded_rng(0));
    let features = extract_features(&net, catalog.images(), 2);
    let d = net.feature_dim();
    let vbpr = Vbpr::new(
        1,
        dataset.num_items(),
        d,
        features.clone(),
        VbprConfig::default(),
        &mut seeded_rng(1),
    );
    use taamr_recsys::VisualRecommender;
    for i in 0..dataset.num_items() {
        assert_eq!(vbpr.item_feature(i), &features[i * d..(i + 1) * d]);
    }
}

#[test]
fn chr_definition_matches_manual_count() {
    // CHR from the metrics crate must equal a hand-rolled count over the
    // same lists — guards against off-by-N denominators.
    let lists = vec![vec![0, 5, 9], vec![1, 5, 7], vec![2, 3, 4]];
    let cats = vec![0, 1, 1, 1, 0, 2, 0, 2, 0, 2];
    let per_cat = category_hit_ratio_all(&lists, &cats, 3, 3);
    for (c, &ratio) in per_cat.iter().enumerate().take(3) {
        let set: HashSet<usize> =
            cats.iter().enumerate().filter(|(_, &cc)| cc == c).map(|(i, _)| i).collect();
        let manual = category_hit_ratio(&lists, &set, 3);
        assert!((ratio - manual).abs() < 1e-12);
        let hand: usize =
            lists.iter().map(|l| l.iter().filter(|i| set.contains(i)).count()).sum();
        assert!((manual - hand as f64 / 9.0).abs() < 1e-12);
    }
}

#[test]
fn trained_bpr_beats_random_on_held_out_items() {
    // Dataset → split → train → evaluate: the whole collaborative path.
    let generated = SyntheticDataset::generate(&SyntheticConfig::tiny_for_tests());
    let mut rng = seeded_rng(2);
    let split = leave_one_out(&generated.dataset, &mut rng);
    let mut model =
        BprMf::new(split.train.num_users(), split.train.num_items(), 16, &mut rng);
    let trainer = PairwiseTrainer::new(PairwiseConfig {
        epochs: 30,
        triplets_per_epoch: None,
        lr: 0.05,
    });
    trainer.fit(&mut model, &split.train, &mut rng).unwrap();

    // AUC of held-out items vs random negatives must beat chance clearly.
    let pairs: Vec<(f32, Vec<f32>)> = split
        .test
        .iter()
        .map(|&(u, i)| {
            let negs: Vec<f32> = (0..20)
                .map(|k| (u * 31 + k * 17) % split.train.num_items())
                .filter(|&j| !generated.dataset.has_interaction(u, j))
                .map(|j| model.score(u, j))
                .collect();
            (model.score(u, i), negs)
        })
        .collect();
    let auc = pairwise_auc(&pairs);
    assert!(auc > 0.6, "trained BPR AUC {auc} barely beats chance");

    // Ranking metrics agree directionally with AUC.
    let lists: Vec<Vec<usize>> = split
        .test
        .iter()
        .map(|&(u, _)| model.top_n(u, 50, split.train.user_items(u)))
        .collect();
    let held: Vec<usize> = split.test.iter().map(|&(_, i)| i).collect();
    let hr = hit_ratio(&lists, &held);
    let nd = ndcg(&lists, &held);
    assert!(hr > 0.0, "HR@50 is zero after training");
    assert!(nd <= hr, "NDCG cannot exceed HR for single-relevant lists");
}

#[test]
fn visual_metrics_agree_on_perturbation_ordering() {
    // A bigger l∞ perturbation of the same image must not look *better*
    // under any of the three metrics.
    let gen = ProductImageGenerator::new(32, 9);
    let clean = gen.generate(Category::Handbag, 1);
    let net = TinyResNet::new(&TinyResNetConfig::tiny_for_tests(Category::COUNT), &mut seeded_rng(3));
    let f_clean = extract_features(&net, std::slice::from_ref(&clean), 1);

    let perturbed = |eps: f32| -> taamr_vision::Image {
        let mut img = clean.clone();
        for (k, v) in img.as_mut_slice().iter_mut().enumerate() {
            let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
            *v = (*v + sign * eps).clamp(0.0, 1.0);
        }
        img
    };
    let small = perturbed(2.0 / 255.0);
    let large = perturbed(16.0 / 255.0);
    assert!(psnr(&clean, &small).unwrap() > psnr(&clean, &large).unwrap());
    assert!(ssim(&clean, &small).unwrap() > ssim(&clean, &large).unwrap());
    let f_small = extract_features(&net, &[small], 1);
    let f_large = extract_features(&net, &[large], 1);
    assert!(psm(&f_clean, &f_small).unwrap() <= psm(&f_clean, &f_large).unwrap());
}

#[test]
fn category_labels_flow_intact_from_data_to_vision() {
    // Every category id the data generator assigns must map to a vision
    // Category, and the rendered image must be that category's render.
    let generated = SyntheticDataset::generate(&SyntheticConfig::amazon_men_like());
    let gen = ProductImageGenerator::new(16, 11);
    for i in (0..generated.dataset.num_items()).step_by(503) {
        let cat_id = generated.dataset.item_category(i);
        let cat = Category::from_id(cat_id).expect("category maps to vision");
        let img = gen.generate(cat, i as u64);
        assert_eq!(img.height(), 16);
    }
}
