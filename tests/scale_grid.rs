//! Scale-grid differential suite: sharded scoring is bitwise invisible.
//!
//! The sharded drivers ([`ScoringEngine::par_top_n_all_sharded`] /
//! [`ScoringEngine::par_item_ranks_sharded`]) exist to bound memory at
//! million-user scale; this suite pins down that they change *nothing
//! else*. For every model family (popularity, BPR-MF, VBPR, AMR), every
//! ragged shard height (1, primes, taller than the user set), and 1/2/8
//! threads, the sharded results must be identical — element for element —
//! to the default-plan driver and to the serial per-user trait calls.
//!
//! The i8-quantized path is *approximate* by contract, so it gets a
//! different pin: deterministic across threads and shard plans, and top-N
//! overlap vs the exact f32 path at or above a conservative floor.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use taamr::parallel::with_threads;
use taamr_data::ImplicitDataset;
use taamr_recsys::{
    top_n_overlap, Amr, AmrConfig, BprMf, Popularity, Recommender, ScoringEngine, ShardPlan,
    Vbpr, VbprConfig,
};

/// The pinned accuracy floor for i8-quantized top-10 overlap. Measured
/// overlap on seeded models sits around 0.99 (see `BENCH_scale.json`);
/// 0.9 leaves room for unlucky seeds without letting real accuracy
/// regressions through.
const QUANT_OVERLAP_FLOOR: f64 = 0.9;

fn fake_features(num_items: usize, d: usize, seed: u64) -> Vec<f32> {
    let shift = (seed % 89) as usize;
    (0..num_items * d).map(|i| (((i + shift) * 37 % 101) as f32 / 101.0) - 0.5).collect()
}

/// One instance of each model family at the given size, seeded.
fn families(users: usize, items: usize, seed: u64) -> Vec<(&'static str, Box<dyn Recommender>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let user_items: Vec<Vec<usize>> =
        (0..users).map(|u| vec![u % items, (u * 7 + 1) % items]).collect();
    let data = ImplicitDataset::new(user_items, vec![0; items], 1);
    let d = 12;
    let vbpr = Vbpr::new(users, items, d, fake_features(items, d, seed), VbprConfig::default(), &mut rng);
    vec![
        ("popularity", Box::new(Popularity::from_dataset(&data))),
        ("bpr_mf", Box::new(BprMf::new(users, items, 8, &mut rng))),
        ("vbpr", Box::new(vbpr.clone())),
        ("amr", Box::new(Amr::from_vbpr(vbpr, AmrConfig::default()))),
    ]
}

/// Shard heights that stress the ragged edges: single-user shards, primes
/// that misalign with `SCORE_BLOCK_USERS`, and a shard taller than the
/// whole user set (one-shot streaming).
fn ragged_shards(users: usize) -> Vec<usize> {
    vec![1, 7, 13, users.max(1), users + 3]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Tentpole pin: for all four model families, sharded top-N and
    /// item-rank results are identical to the default-plan driver and the
    /// serial per-user trait calls, for every ragged shard height at
    /// 1/2/8 threads.
    #[test]
    fn sharded_scoring_is_bitwise_invisible(
        users in 1usize..40,
        items in 2usize..30,
        seed in 0u64..1000,
    ) {
        let probe_item = seed as usize % items;
        for (name, model) in families(users, items, seed) {
            let model = model.as_ref();
            let engine = ScoringEngine::for_model(model);
            let seen: Vec<Vec<usize>> = (0..users).map(|u| vec![u % items]).collect();
            let seen_of = |u: usize| seen[u].as_slice();
            // Serial ground truth through the trait.
            let expect_lists: Vec<Vec<usize>> =
                (0..users).map(|u| model.top_n(u, 5, &seen[u])).collect();
            let base_lists = engine.par_top_n_all(model, 5, seen_of).unwrap();
            prop_assert!(base_lists == expect_lists, "{}: default plan vs trait", name);
            let base_ranks = engine.par_item_ranks(model, probe_item, seen_of).unwrap();
            for shard in ragged_shards(users) {
                let plan = ShardPlan::new(users, shard);
                for threads in [1usize, 2, 8] {
                    let (lists, ranks) = with_threads(threads, || {
                        (
                            engine.par_top_n_all_sharded(model, 5, seen_of, &plan).unwrap(),
                            engine.par_item_ranks_sharded(model, probe_item, seen_of, &plan).unwrap(),
                        )
                    });
                    prop_assert!(
                        lists == base_lists,
                        "{}: lists diverged at shard={} threads={}", name, shard, threads
                    );
                    prop_assert!(
                        ranks == base_ranks,
                        "{}: ranks diverged at shard={} threads={}", name, shard, threads
                    );
                }
            }
        }
    }

    /// The quantized path is deterministic (thread- and shard-invariant)
    /// and its top-N overlap against the exact f32 path meets the pinned
    /// floor for every factor-based family.
    #[test]
    fn quantized_path_is_deterministic_and_accurate(
        users in 8usize..40,
        items in 16usize..60,
        seed in 0u64..1000,
    ) {
        for (name, model) in families(users, items, seed) {
            let model = model.as_ref();
            let engine = ScoringEngine::for_model(model);
            let Some(q) = engine.quantized(model).unwrap() else {
                prop_assert!(name == "popularity", "only the static family may lack factors");
                continue;
            };
            let exact = engine.par_top_n_all(model, 10, |_| &[][..]).unwrap();
            let approx = q.par_top_n_all(model, 10, |_| &[][..]).unwrap();
            let overlap = top_n_overlap(&exact, &approx);
            prop_assert!(
                overlap >= QUANT_OVERLAP_FLOOR,
                "{}: quantized top-10 overlap {} below pinned floor {}",
                name, overlap, QUANT_OVERLAP_FLOOR
            );
            for shard in [1usize, 13, users + 3] {
                let plan = ShardPlan::new(users, shard);
                for threads in [1usize, 2, 8] {
                    let again = with_threads(threads, || {
                        q.par_top_n_all_sharded(model, 10, |_| &[][..], &plan).unwrap()
                    });
                    prop_assert!(
                        again == approx,
                        "{}: quantized lists diverged at shard={} threads={}",
                        name, shard, threads
                    );
                }
            }
        }
    }
}

/// Popularity has no factor terms, so quantization has nothing to compress:
/// the engine reports that as `None`, never as an error.
#[test]
fn static_plans_decline_quantization() {
    let data = ImplicitDataset::new(vec![vec![0], vec![1]], vec![0, 0, 0], 1);
    let model = Popularity::from_dataset(&data);
    let engine = ScoringEngine::for_model(&model);
    assert!(engine.quantized(&model).unwrap().is_none());
}

/// The shard and quantized-block counters are pure functions of the plan:
/// the same sweep at any thread count streams the same number of shards
/// and scores the same number of quantized blocks.
#[test]
fn shard_telemetry_is_thread_invariant() {
    taamr_obs::set_enabled(true);
    let counted = |name: &str| taamr_obs::snapshot().counter(name).unwrap_or(0);
    let model = BprMf::new(130, 20, 4, &mut StdRng::seed_from_u64(5));
    let engine = ScoringEngine::for_model(&model);
    let q = engine.quantized(&model).unwrap().expect("BPR-MF has factor terms");
    let plan = ShardPlan::new(130, 48);
    let mut shard_counts = Vec::new();
    let mut quant_counts = Vec::new();
    for threads in [1usize, 2, 8] {
        let (before_shards, before_blocks) =
            (counted("scoring_shards"), counted("quantized_score_blocks"));
        with_threads(threads, || {
            engine.par_top_n_all_sharded(&model, 3, |_| &[][..], &plan).unwrap();
            q.par_top_n_all_sharded(&model, 3, |_| &[][..], &plan).unwrap();
        });
        shard_counts.push(counted("scoring_shards") - before_shards);
        quant_counts.push(counted("quantized_score_blocks") - before_blocks);
    }
    // ceil(130/48) = 3 shards per driver, two drivers per round.
    assert_eq!(shard_counts, vec![6, 6, 6], "shards streamed at every thread count");
    // ceil(48/64)·2 + ceil(34/64) = 3 quantized blocks per quant sweep.
    assert_eq!(quant_counts, vec![3, 3, 3], "quant blocks at every thread count");
}
