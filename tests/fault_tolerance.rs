//! Fault-tolerance contract for the experiment pipeline.
//!
//! The promises under test:
//!
//! 1. A checkpointed run produces a report **byte-identical** to an
//!    uncheckpointed run, whether it starts cold, resumes from a full run
//!    directory, or resumes after a simulated kill (between training stages
//!    or between attack-grid cells).
//! 2. A corrupted checkpoint (bit flip, truncation) is detected by checksum,
//!    deleted, and transparently regenerated.
//! 3. A failing attack cell degrades into a marked gap in the report instead
//!    of aborting the experiment.
//!
//! All faults are injected deterministically through `taamr-fault`; no test
//! here relies on timing or real crashes.

use std::path::PathBuf;

use taamr::experiment::run_or_resume_dataset;
use taamr::{ExperimentScale, Pipeline, PipelineConfig, PipelineError, RunDir};
use taamr_data::SyntheticConfig;
use taamr_fault::{flip_bit, truncate_file, with_plan, FaultPlan, FaultSite};

fn tiny_config() -> PipelineConfig {
    PipelineConfig::for_scale_with_dataset(
        ExperimentScale::Tiny,
        SyntheticConfig::amazon_men_like(),
    )
}

/// A fresh run directory under `target/`, wiped before use.
fn fresh_run_dir(tag: &str) -> PathBuf {
    let base = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_owned());
    let dir = PathBuf::from(base).join(format!("taamr-fault-test-{tag}"));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// The canonical byte encoding a resumed run must reproduce exactly.
fn to_json(report: &taamr::DatasetReport) -> String {
    serde_json::to_string(report).expect("report serializes")
}

fn baseline_report() -> taamr::DatasetReport {
    Pipeline::build(&tiny_config())
        .expect("tiny build converges")
        .run_paper_experiment(None)
        .expect("uncheckpointed run succeeds")
}

#[test]
fn checkpointed_run_is_byte_identical_to_uncheckpointed_run() {
    let dir = fresh_run_dir("cold");
    let baseline = to_json(&baseline_report());

    // Cold checkpointed run: writes every stage + cell checkpoint.
    let cold = run_or_resume_dataset(
        ExperimentScale::Tiny,
        SyntheticConfig::amazon_men_like(),
        &dir,
    )
    .expect("cold run succeeds");
    assert_eq!(to_json(&cold), baseline, "checkpointing must not change the report");

    // Warm resume: every stage loads from a checkpoint, nothing retrains.
    let warm = run_or_resume_dataset(
        ExperimentScale::Tiny,
        SyntheticConfig::amazon_men_like(),
        &dir,
    )
    .expect("warm resume succeeds");
    assert_eq!(to_json(&warm), baseline, "a fully-resumed run must be byte-identical");

    // No temp files may survive the atomic writes.
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
        .collect();
    assert!(leftovers.is_empty(), "atomic writes must not leak temp files: {leftovers:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn kill_after_vbpr_warmup_resumes_byte_identical() {
    let dir = fresh_run_dir("stage-kill");
    let baseline = to_json(&baseline_report());

    // Simulated kill right after the VBPR warm-up stage completes
    // (stage ordinals: 0 = cnn, 1 = vbpr-warmup, 2 = vbpr, 3 = amr).
    let plan = FaultPlan::new().with(FaultSite::StageInterrupt, 1);
    let (result, unfired) = with_plan(plan, || {
        run_or_resume_dataset(ExperimentScale::Tiny, SyntheticConfig::amazon_men_like(), &dir)
    });
    assert_eq!(unfired, 0, "the interrupt must actually fire");
    match result {
        Err(PipelineError::Interrupted { after_stage }) => {
            assert_eq!(after_stage, "vbpr-warmup");
        }
        other => panic!("expected an interrupt, got {other:?}"),
    }

    // The completed stages left checkpoints behind …
    let run = RunDir::open(&dir, &tiny_config()).unwrap();
    assert!(run.has_stage("cnn"), "cnn checkpoint survives the kill");
    assert!(run.has_stage("vbpr-warmup"), "warm-up checkpoint survives the kill");
    assert!(!run.has_stage("amr"), "later stages must not have checkpoints yet");

    // … so the resumed run skips them and finishes byte-identically.
    let resumed = run_or_resume_dataset(
        ExperimentScale::Tiny,
        SyntheticConfig::amazon_men_like(),
        &dir,
    )
    .expect("resume succeeds");
    assert_eq!(to_json(&resumed), baseline, "resume after a stage kill must be byte-identical");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn kill_mid_grid_resumes_byte_identical() {
    let dir = fresh_run_dir("grid-kill");
    let baseline = to_json(&baseline_report());

    // Kill immediately before grid cell 3: cells 0–2 keep their checkpoints.
    let plan = FaultPlan::new().with(FaultSite::GridInterrupt, 3);
    let (result, unfired) = with_plan(plan, || {
        run_or_resume_dataset(ExperimentScale::Tiny, SyntheticConfig::amazon_men_like(), &dir)
    });
    assert_eq!(unfired, 0, "the grid interrupt must actually fire");
    match result {
        Err(PipelineError::Interrupted { after_stage }) => {
            assert_eq!(after_stage, "cell-002");
        }
        other => panic!("expected a grid interrupt, got {other:?}"),
    }
    let run = RunDir::open(&dir, &tiny_config()).unwrap();
    assert!(run.has_stage("cell-000") && run.has_stage("cell-002"));
    assert!(!run.has_stage("cell-003"), "the killed cell must not be checkpointed");

    let resumed = run_or_resume_dataset(
        ExperimentScale::Tiny,
        SyntheticConfig::amazon_men_like(),
        &dir,
    )
    .expect("resume succeeds");
    assert_eq!(to_json(&resumed), baseline, "resume after a grid kill must be byte-identical");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_checkpoints_are_detected_and_regenerated() {
    let dir = fresh_run_dir("corrupt");
    let baseline = to_json(&baseline_report());

    // Complete a full checkpointed run, then corrupt two checkpoints:
    // a bit flip in a grid cell and a truncation of the CNN stage.
    run_or_resume_dataset(ExperimentScale::Tiny, SyntheticConfig::amazon_men_like(), &dir)
        .expect("cold run succeeds");
    let run = RunDir::open(&dir, &tiny_config()).unwrap();
    let cell_path = run.stage_path("cell-000");
    let cnn_path = run.stage_path("cnn");
    flip_bit(&cell_path, 200, 3).expect("flip a payload bit");
    truncate_file(&cnn_path, 64).expect("truncate the cnn checkpoint");

    // Resume: both corruptions fail their checksums, the files are deleted
    // and the stages recomputed — the report is still byte-identical.
    let resumed = run_or_resume_dataset(
        ExperimentScale::Tiny,
        SyntheticConfig::amazon_men_like(),
        &dir,
    )
    .expect("resume past corruption succeeds");
    assert_eq!(to_json(&resumed), baseline, "recovery from corruption must be byte-identical");

    // The regenerated checkpoints are valid again.
    let run = RunDir::open(&dir, &tiny_config()).unwrap();
    assert!(run.has_stage("cell-000"), "corrupt cell checkpoint was regenerated");
    assert!(run.has_stage("cnn"), "truncated cnn checkpoint was regenerated");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn failed_cell_degrades_to_marked_gap_not_abort() {
    let plan = FaultPlan::new().with(FaultSite::AttackCell, 0);
    let (report, unfired) = with_plan(plan, baseline_report);
    assert_eq!(unfired, 0, "the cell fault must actually fire");

    assert_eq!(report.errors.len(), 1, "exactly the faulted cell is missing");
    let err = &report.errors[0];
    assert!(err.message.contains("injected cell fault"), "error records the cause: {err}");

    // The rest of the grid still completed.
    let healthy = baseline_report();
    assert_eq!(report.outcomes.len() + 1, healthy.outcomes.len());

    // And the rendered tables mark the gap instead of silently shrinking.
    for table in [report.render_table2(), report.render_table3(), report.render_table4()] {
        assert!(table.contains("MISSING"), "tables must flag the missing cell:\n{table}");
    }
}
