//! Observability contract: telemetry is a pure *observer*.
//!
//! The promises under test:
//!
//! 1. Turning the `taamr-obs` layer on must not change a single bit of any
//!    result — the full `DatasetReport` is byte-identical with telemetry on
//!    and off, at 1 and at 8 threads.
//! 2. Counters marked [`Counter::thread_invariant`] really are: every such
//!    counting site sits at a semantic API entry point, so the same
//!    experiment produces the same counts no matter how the work was
//!    scheduled. The scratch-allocator gauges (`scratch_reuse_hits`,
//!    `scratch_grows`) are the documented exception — buffer reuse depends
//!    on how work was partitioned across threads — and are excluded from
//!    the invariance check.
//! 3. `Telemetry` survives a JSON round trip through the same serializer
//!    the run directory uses for `telemetry.json`.
//!
//! Telemetry state is process-global, so the tests that touch it serialize
//! through one mutex (Rust's test harness runs tests on threads).

use std::sync::{Mutex, OnceLock};

use taamr::parallel::with_threads;
use taamr::{ExperimentScale, Pipeline, PipelineConfig, RunDir};
use taamr_obs::Counter;

/// Serializes every test that mutates the global telemetry registry.
fn gate() -> std::sync::MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    GATE.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|e| e.into_inner())
}

fn tiny_config() -> PipelineConfig {
    PipelineConfig::for_scale(ExperimentScale::Tiny)
}

/// Runs the full tiny experiment and returns the serialized report.
fn run_report(config: &PipelineConfig) -> String {
    let mut pipeline = Pipeline::build(config).expect("tiny build converges");
    let report = pipeline.run_paper_experiment(None).expect("experiment succeeds");
    serde_json::to_string(&report).expect("report serialises")
}

#[test]
fn instrumented_run_is_bitwise_identical_at_1_and_8_threads() {
    let _gate = gate();
    let config = tiny_config();

    let mut counter_snapshots = Vec::new();
    for threads in [1usize, 8] {
        let (plain, instrumented, telemetry) = with_threads(threads, || {
            taamr_obs::reset();
            taamr_obs::set_enabled(false);
            let plain = run_report(&config);

            taamr_obs::reset();
            taamr_obs::set_enabled(true);
            let instrumented = run_report(&config);
            let telemetry = taamr_obs::snapshot();
            taamr_obs::set_enabled(false);
            taamr_obs::reset();
            (plain, instrumented, telemetry)
        });

        assert_eq!(
            plain, instrumented,
            "telemetry must not change the report ({threads} threads)"
        );

        // The telemetry itself is substantive: every counter is exported
        // (17 > the 8 the acceptance bar asks for) and the hot ones fired.
        // The last three only fire in the black-box and embedding-space
        // attack cells, so they double as proof those cells really ran.
        assert!(telemetry.counters.len() >= 8, "expected ≥8 counters");
        for c in [
            Counter::GemmCalls,
            Counter::GemmPanelPacks,
            Counter::SamplerDraws,
            Counter::AttackItems,
            Counter::CnnEpochs,
            Counter::ScoringGemmCalls,
            Counter::ScoringShards,
            Counter::EmbedCacheRebuilds,
            Counter::EmbedCacheHits,
            Counter::AttackQueries,
            Counter::AttackOracleCacheHits,
            Counter::EmbedAttackSteps,
        ] {
            assert!(
                telemetry.counter(c.name()).unwrap_or(0) > 0,
                "counter {} should have fired during a full experiment",
                c.name()
            );
        }
        // Stage spans were recorded with real wall time.
        for stage in ["stage:cnn", "stage:vbpr-warmup", "attack-cell"] {
            let span = telemetry.span(stage).unwrap_or_else(|| panic!("span {stage} missing"));
            assert!(span.count > 0 && span.total_ns > 0, "span {stage} must record time");
        }
        // The serve hot-path counters (schema v8) must be *declared*
        // scheduling-dependent: whether two concurrent requests coalesce
        // into one batch or land as a cache hit is a wall-clock race, so
        // promising thread invariance for them would make this very test
        // flaky the moment a serve workload joins the experiment.
        for c in [
            Counter::ServeCacheHits,
            Counter::ServeCacheMisses,
            Counter::ServeCacheEvictions,
            Counter::ServeCoalescedBatches,
            Counter::ServeCoalescedRequests,
        ] {
            assert!(
                !c.thread_invariant(),
                "serve counter {} must be declared scheduling-dependent",
                c.name()
            );
        }
        // Keep only the counters that promise thread invariance: the scratch
        // gauges legitimately differ with scheduling (each thread warms its
        // own buffers), the serve counters count wall-clock races by
        // design, and `Counter::thread_invariant` is the single source
        // of truth for which ones those are.
        let invariant: Vec<_> = telemetry
            .counters
            .iter()
            .filter(|stat| {
                taamr_obs::COUNTERS
                    .iter()
                    .find(|c| c.name() == stat.name)
                    .is_none_or(|c| c.thread_invariant())
            })
            .cloned()
            .collect();
        let declared_variant =
            taamr_obs::COUNTERS.iter().filter(|c| !c.thread_invariant()).count();
        assert!(
            invariant.len() >= telemetry.counters.len() - declared_variant,
            "only the declared scheduling-dependent counters may vary"
        );
        counter_snapshots.push(invariant);
    }

    // Thread-count invariance of every counter that promises it (timing
    // obviously differs).
    assert_eq!(
        counter_snapshots[0], counter_snapshots[1],
        "thread-invariant counters must be identical at 1 and 8 threads"
    );
}

#[test]
fn counter_merge_is_deterministic_under_rayon() {
    let _gate = gate();
    let totals: Vec<u64> = [1usize, 4, 8]
        .iter()
        .map(|&threads| {
            with_threads(threads, || {
                taamr_obs::reset();
                taamr_obs::set_enabled(true);
                use rayon::prelude::*;
                (0..1000u64).into_par_iter().for_each(|i| {
                    taamr_obs::incr(Counter::SamplerDraws);
                    taamr_obs::add(Counter::AttackItems, i % 7);
                });
                let t = taamr_obs::snapshot();
                taamr_obs::set_enabled(false);
                taamr_obs::reset();
                t.counter(Counter::SamplerDraws.name()).unwrap()
                    + t.counter(Counter::AttackItems.name()).unwrap()
            })
        })
        .collect();
    assert_eq!(totals[0], totals[1], "1 vs 4 threads");
    assert_eq!(totals[0], totals[2], "1 vs 8 threads");
}

#[test]
fn telemetry_round_trips_through_json() {
    let _gate = gate();
    taamr_obs::reset();
    taamr_obs::set_enabled(true);
    taamr_obs::add(Counter::GemmCalls, 42);
    {
        let _span = taamr_obs::span("stage:round-trip");
    }
    taamr_obs::record_epoch("cnn", 3, 0.125, 0.875);
    let telemetry = taamr_obs::snapshot();
    taamr_obs::set_enabled(false);
    taamr_obs::reset();

    let json = serde_json::to_string(&telemetry).expect("serialises");
    let back: taamr_obs::Telemetry = serde_json::from_str(&json).expect("deserialises");
    assert_eq!(back.schema, taamr_obs::TELEMETRY_SCHEMA);
    assert_eq!(back.counter(Counter::GemmCalls.name()), Some(42));
    assert_eq!(back.span("stage:round-trip").map(|s| s.count), telemetry.span("stage:round-trip").map(|s| s.count));
    assert_eq!(back.epochs.len(), 1);
    assert_eq!(back.epochs[0].stage, "cnn");
    assert_eq!(back.epochs[0].epoch, 3);
    // Byte-stable: re-serialising the round-tripped value is a fixpoint.
    assert_eq!(serde_json::to_string(&back).unwrap(), json);
}

#[test]
fn run_dir_writes_telemetry_json_atomically() {
    let _gate = gate();
    let base = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_owned());
    let dir = std::path::PathBuf::from(base).join("taamr-obs-test-rundir");
    std::fs::remove_dir_all(&dir).ok();

    taamr_obs::reset();
    taamr_obs::set_enabled(true);
    taamr_obs::incr(Counter::CheckpointHits);
    {
        let _span = taamr_obs::span("stage:telemetry-write");
    }
    let snapshot = taamr_obs::snapshot();
    taamr_obs::set_enabled(false);
    taamr_obs::reset();

    let run = RunDir::open(&dir, &tiny_config()).expect("run dir opens");
    let path = run.save_telemetry(&snapshot).expect("telemetry saves");
    assert_eq!(path.file_name().and_then(|n| n.to_str()), Some("telemetry.json"));

    let bytes = std::fs::read(&path).expect("telemetry.json exists");
    let back: taamr_obs::Telemetry = serde_json::from_slice(&bytes).expect("valid JSON");
    assert!(back.counters.len() >= 8, "all counters are exported");
    assert_eq!(back.counter(Counter::CheckpointHits.name()), Some(1));
    assert!(back.span("stage:telemetry-write").is_some());

    // The atomic write must not leave its temp file behind.
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
        .collect();
    assert!(leftovers.is_empty(), "temp files leaked: {leftovers:?}");
    std::fs::remove_dir_all(&dir).ok();
}
