//! Perf regression guards for the packed GEMM kernel.
//!
//! Wall-clock assertions are hostile to loaded CI boxes, so these tests
//! self-skip unless `TAAMR_PERF_TESTS=1` is set (verify.sh sets it for its
//! perf-smoke step). When enabled they run in smoke form: a handful of
//! median-of-5 samples with generous headroom, tuned to catch order-of-
//! magnitude scheduling regressions rather than percent-level drift.
//!
//! Two contracts, gated on the host's actual core count:
//!
//! - **Single-core hosts** (`available_parallelism() < 2`): the ambient
//!   pool resolves to one worker and the parallel entry point runs the
//!   identical serial schedule, so parallel dispatch must not *cost*
//!   anything beyond noise. The scaling smoke self-skips with a printed
//!   reason — a speedup assertion on one core measures only overhead.
//! - **Multi-core hosts**: an 8-thread gemm_256 must be at least 1.5×
//!   faster than serial. The shared-pack schedule packs each `op(B)`
//!   sliver once regardless of worker count, so anything below 1.5× on
//!   real cores means the partition or the pack-reuse path regressed.

use std::time::Instant;

use taamr::parallel::with_threads;
use taamr_tensor::{gemm, seeded_rng, Tensor, Transpose};

/// True unless the caller opted in via `TAAMR_PERF_TESTS=1`.
fn perf_tests_disabled() -> bool {
    if std::env::var("TAAMR_PERF_TESTS").as_deref() == Ok("1") {
        return false;
    }
    eprintln!("perf_kernel: skipped (set TAAMR_PERF_TESTS=1 to enable)");
    true
}

/// Cores the OS will actually give us; 1 when the query fails.
fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Median-of-5 wall time of one 256³ GEMM, in nanoseconds.
fn time_gemm_256(threads: Option<usize>) -> u128 {
    let a = Tensor::rand_uniform(&[256, 256], -1.0, 1.0, &mut seeded_rng(0));
    let b = Tensor::rand_uniform(&[256, 256], -1.0, 1.0, &mut seeded_rng(1));
    let mut c = Tensor::zeros(&[256, 256]);
    let mut run = || {
        let t0 = Instant::now();
        gemm(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c).unwrap();
        t0.elapsed().as_nanos()
    };
    let mut timed = || match threads {
        Some(t) => with_threads(t, &mut run),
        None => run(),
    };
    timed(); // warm the scratch arena and caches
    let mut samples: Vec<u128> = (0..5).map(|_| timed()).collect();
    samples.sort_unstable();
    samples[2]
}

/// Single-core contract: parallel dispatch is free (within noise) when the
/// pool has one worker. Doubles as the only wall-clock gate available on
/// one-core CI hosts, where a scaling assertion would be meaningless.
#[test]
fn gemm_256_parallel_dispatch_is_not_slower_than_serial() {
    if perf_tests_disabled() {
        return;
    }
    // Best-of-3 medians: the smoke form retries the whole measurement so a
    // single scheduler hiccup on a shared box cannot fail the gate.
    let mut best_ratio = f64::INFINITY;
    for attempt in 0..3 {
        let serial = time_gemm_256(Some(1));
        let parallel = time_gemm_256(None); // ambient pool, as the pipeline runs it
        let ratio = parallel as f64 / serial as f64;
        eprintln!(
            "gemm_256 attempt {attempt}: serial {serial} ns, parallel {parallel} ns, \
             parallel/serial {ratio:.3}"
        );
        best_ratio = best_ratio.min(ratio);
        if best_ratio <= 1.25 {
            return;
        }
    }
    // 25% headroom absorbs timer noise and, on single-core hosts, the cost
    // of resolving the (empty) parallel dispatch. A real scheduling
    // regression — like the historical 0.851 "speedup" would have implied
    // if it had been signal — blows well past this on all three attempts.
    panic!("parallel gemm_256 is {best_ratio:.3}x serial; dispatch overhead regressed");
}

/// Multi-core contract: gemm_256 at 8 threads is ≥ 1.5× serial. This is
/// the scaling smoke the sharded-scoring work targets — the shared-pack
/// schedule keeps packing cost flat across workers, so the 8-thread run
/// should comfortably clear half of ideal 2-core scaling even on busy
/// boxes. Self-skips (with the reason printed) when the host cannot
/// schedule two threads at once: measured "speedup" there is pure
/// coordination overhead, not kernel behaviour.
#[test]
fn gemm_256_parallel_scales_on_multicore_hosts() {
    if perf_tests_disabled() {
        return;
    }
    let cores = host_cores();
    if cores < 2 {
        eprintln!(
            "perf_kernel: scaling smoke skipped — available_parallelism()={cores}; \
             a single core cannot exhibit parallel speedup, only scheduling overhead \
             (see BENCH_scale.json hardware note)"
        );
        return;
    }
    let mut best_speedup = 0.0f64;
    for attempt in 0..3 {
        let serial = time_gemm_256(Some(1));
        let parallel = time_gemm_256(Some(8));
        let speedup = serial as f64 / parallel as f64;
        eprintln!(
            "gemm_256 attempt {attempt}: serial {serial} ns, 8-thread {parallel} ns, \
             speedup {speedup:.3}"
        );
        best_speedup = best_speedup.max(speedup);
        if best_speedup >= 1.5 {
            return;
        }
    }
    panic!(
        "gemm_256 8-thread speedup is {best_speedup:.3}x on a {cores}-core host; \
         parallel schedule stopped scaling"
    );
}
