//! Perf regression guards for the packed GEMM kernel.
//!
//! `#[ignore]`d by default: wall-clock assertions are hostile to loaded CI
//! boxes, so these run on demand —
//! `cargo test -p taamr --release --test perf_kernel -- --ignored`.
//!
//! The contract under test replaces the old, misleading
//! `gemm_256 speedup 0.851` row in `BENCH_parallel.json`: on a single-core
//! host the ambient pool resolves to one thread and the parallel entry
//! point runs the identical serial schedule, so parallel dispatch must not
//! *cost* anything beyond noise. On multi-core hosts the same assertion
//! tightens into "parallel is at least as fast as serial".

use std::time::Instant;

use taamr::parallel::with_threads;
use taamr_tensor::{gemm, seeded_rng, Tensor, Transpose};

/// Median-of-5 wall time of one 256³ GEMM, in nanoseconds.
fn time_gemm_256(threads: Option<usize>) -> u128 {
    let a = Tensor::rand_uniform(&[256, 256], -1.0, 1.0, &mut seeded_rng(0));
    let b = Tensor::rand_uniform(&[256, 256], -1.0, 1.0, &mut seeded_rng(1));
    let mut c = Tensor::zeros(&[256, 256]);
    let mut run = || {
        let t0 = Instant::now();
        gemm(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c).unwrap();
        t0.elapsed().as_nanos()
    };
    let mut timed = || match threads {
        Some(t) => with_threads(t, &mut run),
        None => run(),
    };
    timed(); // warm the scratch arena and caches
    let mut samples: Vec<u128> = (0..5).map(|_| timed()).collect();
    samples.sort_unstable();
    samples[2]
}

#[test]
#[ignore = "wall-clock sensitive; run with --ignored on a quiet machine"]
fn gemm_256_parallel_dispatch_is_not_slower_than_serial() {
    let serial = time_gemm_256(Some(1));
    let parallel = time_gemm_256(None); // ambient pool, as the pipeline runs it
    let ratio = parallel as f64 / serial as f64;
    eprintln!(
        "gemm_256: serial {serial} ns, parallel {parallel} ns, parallel/serial {ratio:.3}"
    );
    // 25% headroom absorbs timer noise and, on single-core hosts, the cost
    // of resolving the (empty) parallel dispatch. A real scheduling
    // regression — like the historical 0.851 "speedup" would have implied
    // if it had been signal — blows well past this.
    assert!(
        ratio <= 1.25,
        "parallel gemm_256 is {ratio:.3}x serial; dispatch overhead regressed"
    );
}
