//! End-to-end integration tests: the full TAaMR pipeline at test scale.

use taamr::{AttackSpec, ExperimentScale, ModelKind, Pipeline, PipelineConfig};
use taamr_attack::{Attack, Epsilon, Fgsm, Pgd, WhiteBox};

fn tiny() -> Pipeline {
    Pipeline::build(&PipelineConfig::for_scale(ExperimentScale::Tiny)).expect("tiny build converges")
}

#[test]
fn full_grid_experiment_covers_all_cells() {
    let mut pipeline = tiny();
    let report = pipeline.run_paper_experiment(None).unwrap();
    // Each scenario contributes 2 pixel attacks × 4 ε + SPSA + 2 embedding
    // cells = 11 outcomes per model.
    assert!(!report.outcomes.is_empty());
    assert_eq!(report.outcomes.len() % 11, 0);
    let pixel = |a: &str| a == "FGSM" || a == "PGD";
    for o in &report.outcomes {
        match o.attack.as_str() {
            // Pixel epsilons appear in the paper's sweep only.
            "FGSM" | "PGD" => assert!([2.0, 4.0, 8.0, 16.0].contains(&o.epsilon_255)),
            "SPSA" => assert_eq!(o.epsilon_255, 8.0),
            // Embedding-space attacks have no pixel budget.
            "EmbedSign" | "EmbedL2" => assert_eq!(o.epsilon_255, 0.0),
            other => panic!("unexpected attack family `{other}` in the grid"),
        }
        assert!((0.0..=1.0).contains(&o.success_rate));
    }
    // Both models appear.
    assert!(report.outcomes.iter().any(|o| o.model == ModelKind::Vbpr));
    assert!(report.outcomes.iter().any(|o| o.model == ModelKind::Amr));
    // The pivoted tables cover every attack: pixel rows sweep 4 ε, the new
    // families contribute a single-ε column each.
    let t2 = report.table2();
    assert!(t2.iter().all(|r| r.chr_after.len() == if pixel(&r.attack) { 4 } else { 1 }));
    let t3 = report.table3();
    assert!(t3.iter().all(|r| r.success.len() == if pixel(&r.attack) { 4 } else { 1 }));
    let t4 = report.table4();
    assert_eq!(t4.len(), 3 * 5); // 3 metrics × 5 attack families
}

#[test]
fn report_survives_json_round_trip() {
    let mut pipeline = tiny();
    let report = pipeline.run_paper_experiment(None).unwrap();
    let json = serde_json::to_string(&report).expect("serialises");
    let back: taamr::DatasetReport = serde_json::from_str(&json).expect("deserialises");
    assert_eq!(back.outcomes.len(), report.outcomes.len());
    assert_eq!(back.render_table2(), report.render_table2());
}

#[test]
fn attacks_respect_threat_model_through_the_pipeline() {
    // The adversary capability is l∞ ≤ ε on valid images; verify at the
    // pipeline level (not just the attack unit tests).
    let mut pipeline = tiny();
    let (similar, dissimilar) = pipeline.select_scenarios(ModelKind::Vbpr);
    let scenario = similar.or(dissimilar).expect("scenario exists");
    let items = pipeline.dataset().items_of_category(scenario.source.id());
    let clean = pipeline.catalog().batch(&items[..items.len().min(4)]);

    for eps in Epsilon::paper_sweep() {
        for attack in [&Fgsm::new(eps) as &dyn Attack, &Pgd::new(eps) as &dyn Attack] {
            let mut rng = taamr_tensor::seeded_rng(0);
            let adv = pipeline.with_classifier_mut(|classifier| {
                attack
                    .perturb(
                        &mut WhiteBox(classifier),
                        &clean,
                        taamr_attack::AttackGoal::Targeted(scenario.target.id()),
                        &mut rng,
                    )
                    .expect("white-box pixel attacks cannot fail on a white-box worker")
            });
            assert!(adv.linf_distance(&clean) <= eps.as_fraction() + 1e-6);
            assert!(adv.data.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }
}

#[test]
fn attack_only_changes_attacked_category_lists_modestly() {
    // Swapping source-category features must leave models' scores for other
    // items untouched (scores are per-item; only rankings shift).
    let mut pipeline = tiny();
    let (similar, dissimilar) = pipeline.select_scenarios(ModelKind::Vbpr);
    let scenario = similar.or(dissimilar).expect("scenario exists");
    let outcome = pipeline
        .run_attack(ModelKind::Vbpr, &AttackSpec::Fgsm { epsilon_255: 8.0 }, scenario)
        .unwrap();
    // The baseline CHR reported in the outcome matches a fresh computation.
    let chr = pipeline.chr_per_category(pipeline.model(ModelKind::Vbpr));
    let source_id = taamr_vision::Category::ALL
        .iter()
        .find(|c| c.name() == outcome.source)
        .unwrap()
        .id();
    assert!((chr[source_id] - outcome.chr_source_before).abs() < 1e-9);
}

#[test]
fn figure2_example_is_internally_consistent() {
    let mut pipeline = tiny();
    let (similar, dissimilar) = pipeline.select_scenarios(ModelKind::Vbpr);
    let scenario = similar.or(dissimilar).expect("scenario exists");
    let fig = pipeline.figure2_example(ModelKind::Vbpr, scenario);
    assert_eq!(fig.epsilon_255, 8.0);
    assert_eq!(fig.source, scenario.source.name());
    assert_eq!(fig.target, scenario.target.name());
    let n_items = pipeline.dataset().num_items() as f64;
    assert!(fig.mean_rank_before >= 1.0 && fig.mean_rank_before <= n_items);
    assert!(fig.mean_rank_after >= 1.0 && fig.mean_rank_after <= n_items);
    let display = fig.to_string();
    assert!(display.contains(&fig.source));
}

#[test]
fn pipeline_is_deterministic() {
    let config = PipelineConfig::for_scale(ExperimentScale::Tiny);
    let a = Pipeline::build(&config).unwrap();
    let b = Pipeline::build(&config).unwrap();
    assert_eq!(a.clean_features(), b.clean_features());
    assert_eq!(
        a.model(ModelKind::Vbpr).score_all(0),
        b.model(ModelKind::Vbpr).score_all(0)
    );
    assert_eq!(
        a.chr_per_category(a.model(ModelKind::Amr)),
        b.chr_per_category(b.model(ModelKind::Amr))
    );
}

#[test]
fn top_n_lists_exclude_consumed_items() {
    let pipeline = tiny();
    let lists = pipeline.top_n_lists(pipeline.model(ModelKind::Vbpr));
    let dataset = pipeline.dataset();
    assert_eq!(lists.len(), dataset.num_users());
    for (u, list) in lists.iter().enumerate() {
        assert!(list.len() <= pipeline.config().chr_n);
        for item in list {
            assert!(
                !dataset.has_interaction(u, *item),
                "user {u} was recommended consumed item {item}"
            );
        }
    }
}

#[test]
fn amr_lift_is_bounded_by_vbpr_lift_under_pgd16() {
    // The paper's defence claim, checked end-to-end: at the strongest
    // budget, AMR's CHR lift should not exceed VBPR's. (At tiny scale the
    // CNN is weak, so compare lifts rather than absolute CHR.)
    let mut pipeline = tiny();
    let lift = |p: &mut Pipeline, kind: ModelKind| -> f64 {
        let (similar, dissimilar) = p.select_scenarios(kind);
        match similar.or(dissimilar) {
            Some(s) => {
                let o = p.run_attack(kind, &AttackSpec::Pgd { epsilon_255: 16.0 }, s).unwrap();
                o.chr_source_after - o.chr_source_before
            }
            None => 0.0,
        }
    };
    let vbpr_lift = lift(&mut pipeline, ModelKind::Vbpr);
    let amr_lift = lift(&mut pipeline, ModelKind::Amr);
    // Both lifts can be tiny at this scale; the invariant is the ordering
    // with a small tolerance for ranking noise.
    assert!(
        amr_lift <= vbpr_lift + 0.5,
        "AMR lift {amr_lift} should not exceed VBPR lift {vbpr_lift} materially"
    );
}
