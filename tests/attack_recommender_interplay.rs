//! The TAaMR mechanism, tested link by link with a *well-trained* CNN:
//! targeted attacks move images' deep features toward the target category's
//! cluster, and feature movement toward a preferred category raises
//! recommendation scores.
//!
//! These tests train a small CNN to real accuracy (unlike the Tiny-scale
//! pipeline tests, which prioritise speed), so they validate the scientific
//! mechanism rather than just the plumbing.

use taamr_attack::{Attack, AttackGoal, Epsilon, Fgsm, Pgd, WhiteBox};
use taamr_nn::{
    ImageClassifier, LrSchedule, SgdConfig, TinyResNet, TinyResNetConfig, Trainer, TrainerConfig,
};
use taamr_tensor::seeded_rng;
use taamr_vision::{images_to_tensor, Category, Image, ProductImageGenerator};

/// Trains a CNN on a 4-category subset until it actually classifies.
fn trained_cnn() -> (TinyResNet, ProductImageGenerator, Vec<Category>) {
    let cats = vec![
        Category::Sock,
        Category::RunningShoe,
        Category::AnalogClock,
        Category::Brassiere,
    ];
    let gen = ProductImageGenerator::new(24, 77);
    let mut rng = seeded_rng(0);
    let arch = TinyResNetConfig {
        in_channels: 3,
        base_channels: 8,
        blocks_per_stage: 1,
        stages: 2,
        num_classes: cats.len(),
    };
    let mut net = TinyResNet::new(&arch, &mut rng);
    let mut images = Vec::new();
    let mut labels = Vec::new();
    for (label, &cat) in cats.iter().enumerate() {
        for k in 0..24u64 {
            images.push(gen.generate(cat, 10_000 + k));
            labels.push(label);
        }
    }
    let trainer = Trainer::new(TrainerConfig {
        epochs: 16,
        batch_size: 16,
        sgd: SgdConfig {
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 5e-4,
            // Cosine decay keeps the late epochs stable; with a constant
            // rate this tiny net is at the mercy of the init lottery.
            schedule: LrSchedule::Cosine { total_epochs: 16, floor: 0.005 },
        },
        log_every: 0,
        divergence: Default::default(),
    });
    trainer.fit(&mut net, &images_to_tensor(&images), &labels, &mut rng).unwrap();
    (net, gen, cats)
}

fn fresh_images(gen: &ProductImageGenerator, cat: Category, n: usize) -> Vec<Image> {
    (0..n as u64).map(|k| gen.generate(cat, 20_000 + k)).collect()
}

fn centroid(features: &taamr_tensor::Tensor) -> Vec<f32> {
    let (n, d) = (features.dims()[0], features.dims()[1]);
    let mut c = vec![0.0f32; d];
    for i in 0..n {
        for (j, c_j) in c.iter_mut().enumerate() {
            *c_j += features.at(&[i, j]) / n as f32;
        }
    }
    c
}

fn dist(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum::<f32>().sqrt()
}

#[test]
fn cnn_actually_learns_the_catalog() {
    let (mut net, gen, cats) = trained_cnn();
    let mut correct = 0;
    let mut total = 0;
    for (label, &cat) in cats.iter().enumerate() {
        let imgs = fresh_images(&gen, cat, 10);
        let preds = net.predict(&images_to_tensor(&imgs));
        correct += preds.iter().filter(|&&p| p == label).count();
        total += preds.len();
    }
    let acc = correct as f32 / total as f32;
    assert!(acc > 0.6, "holdout accuracy {acc} too low for mechanism tests");
}

#[test]
fn targeted_attack_moves_features_toward_target_cluster() {
    // The exact lever TAaMR pulls: after the attack, the attacked images'
    // layer-e features must be closer to the *target* category's centroid
    // and farther from their own.
    let (mut net, gen, cats) = trained_cnn();
    let source_label = 0usize; // Sock
    let target_label = 1usize; // Running Shoe

    let source_imgs = fresh_images(&gen, cats[source_label], 8);
    let target_imgs = fresh_images(&gen, cats[target_label], 8);
    let source_batch = images_to_tensor(&source_imgs);
    let f_source = net.features(&source_batch);
    let f_target = net.features(&images_to_tensor(&target_imgs));
    let c_source = centroid(&f_source);
    let c_target = centroid(&f_target);

    let pgd = Pgd::new(Epsilon::from_255(16.0));
    let mut rng = seeded_rng(5);
    let adv = pgd
        .perturb(
            &mut WhiteBox(&mut net),
            &source_batch,
            AttackGoal::Targeted(target_label),
            &mut rng,
        )
        .unwrap();
    let f_adv = net.features(&adv.data);

    let d = f_adv.dims()[1];
    let mut moved_toward_target = 0usize;
    for i in 0..f_adv.dims()[0] {
        let clean_row: Vec<f32> = (0..d).map(|j| f_source.at(&[i, j])).collect();
        let adv_row: Vec<f32> = (0..d).map(|j| f_adv.at(&[i, j])).collect();
        if dist(&adv_row, &c_target) < dist(&clean_row, &c_target) {
            moved_toward_target += 1;
        }
        // The perturbed feature should also drift away from the source.
        let _ = dist(&adv_row, &c_source);
    }
    assert!(
        moved_toward_target >= 6,
        "only {moved_toward_target}/8 features moved toward the target cluster"
    );
}

#[test]
fn pgd_succeeds_more_often_than_fgsm_on_a_real_classifier() {
    // Table III's ordering on a CNN that actually classifies.
    let (mut net, gen, cats) = trained_cnn();
    let source_imgs = fresh_images(&gen, cats[0], 12);
    let batch = images_to_tensor(&source_imgs);
    let goal = AttackGoal::Targeted(1);
    let eps = Epsilon::from_255(8.0);
    let mut rng = seeded_rng(6);
    let fgsm_rate = Fgsm::new(eps)
        .perturb(&mut WhiteBox(&mut net), &batch, goal, &mut rng)
        .unwrap()
        .success_rate();
    let pgd_rate = Pgd::new(eps)
        .perturb(&mut WhiteBox(&mut net), &batch, goal, &mut rng)
        .unwrap()
        .success_rate();
    assert!(
        pgd_rate >= fgsm_rate,
        "PGD ({pgd_rate}) should succeed at least as often as FGSM ({fgsm_rate})"
    );
    assert!(pgd_rate > 0.0, "PGD should fool a trained classifier at ε=8 sometimes");
}

#[test]
fn success_rate_increases_with_epsilon_for_pgd() {
    // Table III's other axis: more budget, more success (modulo noise, so
    // compare the extremes).
    let (mut net, gen, cats) = trained_cnn();
    let source_imgs = fresh_images(&gen, cats[0], 12);
    let batch = images_to_tensor(&source_imgs);
    let goal = AttackGoal::Targeted(2); // dissimilar target: harder
    let mut rng = seeded_rng(7);
    let low = Pgd::new(Epsilon::from_255(2.0))
        .perturb(&mut WhiteBox(&mut net), &batch, goal, &mut rng)
        .unwrap();
    let high = Pgd::new(Epsilon::from_255(16.0))
        .perturb(&mut WhiteBox(&mut net), &batch, goal, &mut rng)
        .unwrap();
    assert!(
        high.success_rate() >= low.success_rate(),
        "ε=16 ({}) should beat ε=2 ({})",
        high.success_rate(),
        low.success_rate()
    );
}

#[test]
fn attacked_images_remain_visually_close() {
    // Table IV's claim on a real classifier: even ε=16 attacks stay in the
    // "good" visual-quality ranges.
    use taamr_metrics::image::{psnr, ssim};
    use taamr_vision::tensor_to_images;
    let (mut net, gen, cats) = trained_cnn();
    let source_imgs = fresh_images(&gen, cats[0], 6);
    let batch = images_to_tensor(&source_imgs);
    let mut rng = seeded_rng(8);
    let adv = Pgd::new(Epsilon::from_255(16.0))
        .perturb(&mut WhiteBox(&mut net), &batch, AttackGoal::Targeted(1), &mut rng)
        .unwrap();
    let adv_imgs = tensor_to_images(&adv.data).unwrap();
    // Note: absolute values are lower than the paper's (0.99 SSIM) because
    // our procedural images are 24 px, so an ε=16/255 perturbation is large
    // relative to local variance; the paper attacks high-resolution photos.
    // The meaningful invariants are the floors and the ε-ordering (tested
    // elsewhere).
    for (clean, attacked) in source_imgs.iter().zip(&adv_imgs) {
        let p = psnr(clean, attacked).unwrap();
        let s = ssim(clean, attacked).unwrap();
        assert!(p > 24.0, "PSNR {p} too low even for ε=16");
        assert!(s > 0.6, "SSIM {s} too low even for ε=16");
    }
}
